"""Task worker service: executes task implementations on a node.

Workers are the "application" half of the paper's environment: the execution
service schedules a task, a worker somewhere runs the bound implementation
and sends the result back.  Delivery is at-least-once (the execution service
re-dispatches on timeout), so a worker may execute the same request twice;
the execution service deduplicates results by ``(instance, task path,
execution index)``, and atomicity of the *effects* is the task's own business
(atomic tasks, §4.2) exactly as in the paper.

Marks are forwarded immediately as one-way datagrams so downstream tasks can
start before the producing task finishes (the early-release semantics), and
are also included in the final reply in case the datagram is lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.schema import Script, TaskClass
from ..engine.context import PendingExternal, TaskContext, TaskResult
from ..engine.registry import ImplementationRegistry, ScriptBinding
from ..net.node import Message, Service
from ..orb.broker import DelayedResult, Interface
from ..sim.crashpoints import crash_point
from .serialization import (
    refs_from_plain,
    refs_to_plain,
    result_to_plain,
    taskclass_from_plain,
)

WORKER_INTERFACE = Interface("TaskWorker", ("execute",))


@dataclass(frozen=True)
class ServiceProfile:
    """Finite-capacity model for a worker (docs/PROTOCOLS.md §13).

    ``lanes`` parallel execution lanes, each occupied for ``service_time``
    virtual seconds per task.  A request arriving while every lane is busy
    waits for the earliest lane — the worker's *backlog*, the physical queue
    whose growth the execution service's admission controller exists to
    bound.  ``service_time=0`` (the default) keeps the worker instantaneous,
    which is what every pre-§13 test assumes.
    """

    service_time: float = 0.0
    lanes: int = 1

    def __post_init__(self) -> None:
        if self.service_time < 0:
            raise ValueError("service_time must be >= 0")
        if self.lanes < 1:
            raise ValueError("lanes must be >= 1")


@dataclass
class WorkRequest:
    """Plain-data dispatch payload (crosses the ORB)."""

    instance_id: str
    task_path: str
    execution_index: int
    taskclass: Dict[str, Any]       # serialized TaskClass
    code: Optional[str]
    input_set: str
    inputs: Dict[str, Any]          # plain refs
    properties: Dict[str, str]
    attempt: int
    repeats: int
    reply_to: str                    # execution-service node name
    # Fencing epoch of the dispatching execution-service incarnation; 0 means
    # unfenced (legacy callers).  See docs/PROTOCOLS.md §12.
    epoch: int = 0

    def to_plain(self) -> Dict[str, Any]:
        return dict(self.__dict__)

    @classmethod
    def from_plain(cls, data: Dict[str, Any]) -> "WorkRequest":
        return cls(**data)


class TaskWorker(Service):
    """Executes implementations from a local registry.

    The worker resolves the script's abstract ``code`` names against its own
    registry — the late binding of §3.  Sub-workflow (script) bindings are
    executed in-process on the worker with a local engine.
    """

    def __init__(
        self,
        name: str,
        registry: ImplementationRegistry,
        profile: Optional[ServiceProfile] = None,
    ) -> None:
        super().__init__(name)
        self.registry = registry
        self.profile = profile or ServiceProfile()
        # Virtual time at which each execution lane next frees up.
        self._lane_busy: List[float] = [0.0] * self.profile.lanes
        self.executed: List[Tuple[str, str, int]] = []  # (instance, path, index)
        # Highest fencing epoch seen on any dispatch.  Requests from older
        # epochs are refused without executing: a deposed primary cannot make
        # this worker do (and ack) work behind the current primary's back.
        # Volatile by design — a worker restart re-learns the fence from the
        # first dispatch it sees, and the journal's exactly-once application
        # still holds (fencing here is a liveness/efficiency aid; safety
        # rests on the lease and the journal, see docs/PROTOCOLS.md §12).
        self.fence_epoch = 0

    def on_recover(self) -> None:
        # The crash destroyed the backlog: queued-but-unfinished work died
        # with the process, so the lanes come back empty.
        self._lane_busy = [0.0] * self.profile.lanes

    def _occupy_lane(self, reply: Dict[str, Any]) -> Any:
        """Charge this request to the earliest-free lane and delay its reply
        until the lane would actually have finished it."""
        if self.profile.service_time <= 0 or self.node is None:
            return reply
        now = self.node.clock.now
        lane = min(range(len(self._lane_busy)), key=self._lane_busy.__getitem__)
        finish = max(now, self._lane_busy[lane]) + self.profile.service_time
        self._lane_busy[lane] = finish
        return DelayedResult(reply, finish - now)

    def execute(self, request_data: Dict[str, Any]) -> Dict[str, Any]:
        """Run one task; returns a plain-data reply.

        Reply shape: ``{"ok": bool, "result": ..., "marks": [...],
        "error": str | None}`` plus the request's identity echo.  A request
        carrying a stale fencing epoch gets ``{"ok": False, "fenced": True,
        "epoch": <highest seen>}`` instead, without executing anything.
        """
        request = WorkRequest.from_plain(dict(request_data))
        if request.epoch:
            if request.epoch < self.fence_epoch:
                return {
                    "instance_id": request.instance_id,
                    "task_path": request.task_path,
                    "execution_index": request.execution_index,
                    "worker": self.name,
                    "ok": False,
                    "fenced": True,
                    "epoch": self.fence_epoch,
                    "error": f"fenced: epoch {request.epoch} < {self.fence_epoch}",
                    "marks": [],
                }
            self.fence_epoch = request.epoch
        crash_point("worker.execute.pre", self)
        self.executed.append(
            (request.instance_id, request.task_path, request.execution_index)
        )
        marks: List[Dict[str, Any]] = []

        def mark_sink(mark_name: str, objects) -> None:
            entry = {
                "instance_id": request.instance_id,
                "task_path": request.task_path,
                "execution_index": request.execution_index,
                "name": mark_name,
                "objects": refs_to_plain(objects),
            }
            marks.append(entry)
            # Early release: push the mark out immediately (may be lost; the
            # final reply re-carries it).
            if self.node is not None and self.node.alive:
                self.node.send(
                    request.reply_to,
                    {"service": "execution", "type": "mark", **entry},
                )

        taskclass = taskclass_from_plain(request.taskclass)
        context = TaskContext(
            task_path=request.task_path,
            taskclass=taskclass,
            input_set=request.input_set,
            inputs=refs_from_plain(request.inputs),
            properties=request.properties,
            attempt=request.attempt,
            repeats=request.repeats,
            mark_sink=mark_sink,
        )
        identity = {
            "instance_id": request.instance_id,
            "task_path": request.task_path,
            "execution_index": request.execution_index,
            # which worker served the request: the execution service's
            # health registry attributes latency/liveness observations to it
            "worker": self.name,
        }
        try:
            binding = self.registry.resolve(request.code)
            if isinstance(binding, ScriptBinding):
                result = self._run_subworkflow(binding, context)
            else:
                result = binding(context)
            if isinstance(result, PendingExternal):
                # interactive / long-running task: parked at the execution
                # service until an external completion arrives
                return self._occupy_lane(
                    {**identity, "ok": True, "external": True, "marks": marks,
                     "error": None}
                )
            if not isinstance(result, TaskResult):
                raise TypeError(
                    f"implementation returned {type(result).__name__}, "
                    f"expected TaskResult"
                )
        except Exception as exc:
            return self._occupy_lane(
                {**identity, "ok": False, "error": repr(exc), "marks": marks}
            )
        # Crash here = the work happened but the reply never left: the
        # at-least-once redispatch will run the task again on some worker,
        # and only the journal's exactly-once application protects the tree.
        crash_point("worker.execute.post", self)
        return self._occupy_lane({
            **identity,
            "ok": True,
            "result": result_to_plain(result),
            "marks": marks,
            "error": None,
        })

    def _run_subworkflow(self, binding: ScriptBinding, context: TaskContext) -> TaskResult:
        from ..engine.local import LocalEngine  # local import: avoids a cycle

        engine = LocalEngine(self.registry)
        result = engine.run(
            binding.script,
            binding.task_name,
            inputs=context.inputs,
            input_set=context.input_set,
        )
        from ..engine.events import WorkflowStatus

        if result.status in (WorkflowStatus.COMPLETED, WorkflowStatus.ABORTED):
            root_class = binding.script.taskclass_of(
                binding.script.tasks[binding.task_name]
            )
            spec = root_class.output(result.outcome)
            return TaskResult(
                spec.kind,
                result.outcome,
                {k: v.value for k, v in result.objects.items()},
            )
        raise RuntimeError(
            f"sub-workflow ended {result.status.value}: {result.error}"
        )
