"""Lexer for the workflow scripting language.

Tokenizes the textual syntax of §4.  Faithful to the paper's listings:

* identifiers are letters/digits/underscores (starting with a letter or _),
* strings accept straight (``"``) **and** the typographic quotes that appear
  throughout the paper's own listings (``“...”``),
* ``;`` separates clauses (the parser treats it permissively),
* ``//`` line comments and ``/* ... */`` block comments are an extension so
  example scripts can be annotated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from ..core.errors import ParseError


class TokenType(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    STRING = "string"
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    SEMI = ";"
    COMMA = ","
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "class",
        "extends",
        "taskclass",
        "task",
        "compoundtask",
        "tasktemplate",
        "parameters",
        "implementation",
        "is",
        "inputs",
        "outputs",
        "input",
        "output",
        "inputobject",
        "outputobject",
        "notification",
        "from",
        "of",
        "if",
        "outcome",
        "abort",
        "repeat",
        "mark",
    }
)

_QUOTE_OPEN = {'"', "“"}   # " and “
_QUOTE_CLOSE = {'"', "”"}  # " and ”


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.type.value}:{self.value!r}@{self.line}:{self.column}>"


_SINGLE = {
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    ";": TokenType.SEMI,
    ",": TokenType.COMMA,
}


def tokenize(text: str) -> List[Token]:
    """Tokenize a whole script; raises :class:`ParseError` on bad input."""
    tokens: List[Token] = []
    line, column = 1, 1
    i, n = 0, len(text)

    def advance(count: int = 1) -> None:
        nonlocal i, line, column
        for _ in range(count):
            if i < n and text[i] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            i += 1

    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            advance()
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                advance()
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            start_line, start_col = line, column
            advance(2)
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                advance()
            if i + 1 >= n:
                raise ParseError("unterminated block comment", start_line, start_col)
            advance(2)
            continue
        if ch in _SINGLE:
            tokens.append(Token(_SINGLE[ch], ch, line, column))
            advance()
            continue
        if ch in _QUOTE_OPEN:
            start_line, start_col = line, column
            advance()
            start = i
            while i < n and text[i] not in _QUOTE_CLOSE:
                if text[i] == "\n":
                    raise ParseError("unterminated string", start_line, start_col)
                advance()
            if i >= n:
                raise ParseError("unterminated string", start_line, start_col)
            value = text[start:i]
            advance()  # closing quote
            tokens.append(Token(TokenType.STRING, value.strip(), start_line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start_line, start_col = line, column
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                advance()
            word = text[start:i]
            kind = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENT
            tokens.append(Token(kind, word, start_line, start_col))
            continue
        raise ParseError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens
