"""Canonical pretty-printer for workflow scripts.

Renders a :class:`~repro.core.schema.Script` back to the paper's concrete
syntax.  ``parse(format_script(s))`` reproduces ``s`` exactly (templates are
kept, instantiations are rendered as the expanded declarations they produced),
which the property-based tests exercise; the repository service uses the
formatter for its ``inspect`` operation.
"""

from __future__ import annotations

from typing import List

from ..core.schema import (
    AnyTaskDecl,
    CompoundTaskDecl,
    GuardKind,
    Implementation,
    InputSetBinding,
    ObjectDecl,
    OutputBinding,
    OutputKind,
    Script,
    Source,
    TaskClass,
    TaskDecl,
    TaskTemplate,
)

_KIND_TEXT = {
    OutputKind.OUTCOME: "outcome",
    OutputKind.ABORT: "abort outcome",
    OutputKind.REPEAT: "repeat outcome",
    OutputKind.MARK: "mark",
}


class _Writer:
    def __init__(self, indent: str = "    ") -> None:
        self.lines: List[str] = []
        self.depth = 0
        self.indent = indent

    def line(self, text: str = "") -> None:
        self.lines.append(f"{self.indent * self.depth}{text}" if text else "")

    def block(self, header: str):
        writer = self

        class _Block:
            def __enter__(self_inner):
                writer.line(header + " {")
                writer.depth += 1
                return writer

            def __exit__(self_inner, exc_type, exc, tb):
                writer.depth -= 1
                writer.line("}")
                return False

        return _Block()

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _format_source(source: Source, notification: bool) -> str:
    if notification:
        base = f"task {source.task_name}"
    else:
        base = f"{source.object_name} of task {source.task_name}"
    if source.guard_kind is GuardKind.OUTPUT:
        return f"{base} if output {source.guard_name}"
    if source.guard_kind is GuardKind.INPUT:
        return f"{base} if input {source.guard_name}"
    return base


def _write_source_list(w: _Writer, header: str, sources, notification: bool) -> None:
    with w.block(header):
        for index, source in enumerate(sources):
            suffix = ";" if index < len(sources) - 1 else ""
            w.line(_format_source(source, notification) + suffix)


def _write_object_decls(w: _Writer, header: str, objects) -> None:
    with w.block(header):
        for index, obj in enumerate(objects):
            suffix = ";" if index < len(objects) - 1 else ""
            w.line(f"{obj.name} of class {obj.class_name}{suffix}")


def _write_taskclass(w: _Writer, taskclass: TaskClass) -> None:
    with w.block(f"taskclass {taskclass.name}"):
        if taskclass.input_sets:
            with w.block("inputs"):
                for spec in taskclass.input_sets:
                    _write_object_decls(w, f"input {spec.name}", spec.objects)
        if taskclass.outputs:
            with w.block("outputs"):
                for out in taskclass.outputs:
                    _write_object_decls(
                        w, f"{_KIND_TEXT[out.kind]} {out.name}", out.objects
                    )
    w.line(";")


def _write_implementation(w: _Writer, implementation: Implementation) -> None:
    if not implementation.properties:
        return
    props = ", ".join(f'"{k}" is "{v}"' for k, v in implementation.properties)
    w.line(f"implementation {{ {props} }};")


def _write_input_sets(w: _Writer, input_sets) -> None:
    if not input_sets:
        return
    with w.block("inputs"):
        for binding in input_sets:
            with w.block(f"input {binding.name}"):
                for obj in binding.objects:
                    _write_source_list(
                        w, f"inputobject {obj.name} from", obj.sources, False
                    )
                    w.line(";")
                for notif in binding.notifications:
                    _write_source_list(w, "notification from", notif.sources, True)
                    w.line(";")
    w.line(";")


def _write_outputs_mapping(w: _Writer, script: Script, decl: CompoundTaskDecl) -> None:
    if not decl.outputs:
        return
    taskclass = script.taskclasses.get(decl.taskclass_name)
    with w.block("outputs"):
        for binding in decl.outputs:
            kind = OutputKind.OUTCOME
            if taskclass is not None:
                spec = taskclass.output(binding.name)
                if spec is not None:
                    kind = spec.kind
            with w.block(f"{_KIND_TEXT[kind]} {binding.name}"):
                for obj in binding.objects:
                    _write_source_list(
                        w, f"outputobject {obj.name} from", obj.sources, False
                    )
                    w.line(";")
                for notif in binding.notifications:
                    _write_source_list(w, "notification from", notif.sources, True)
                    w.line(";")


def _write_decl(w: _Writer, script: Script, decl: AnyTaskDecl) -> None:
    if isinstance(decl, CompoundTaskDecl):
        with w.block(f"compoundtask {decl.name} of taskclass {decl.taskclass_name}"):
            _write_implementation(w, decl.implementation)
            _write_input_sets(w, decl.input_sets)
            for child in decl.tasks:
                _write_decl(w, script, child)
            _write_outputs_mapping(w, script, decl)
        w.line(";")
    else:
        with w.block(f"task {decl.name} of taskclass {decl.taskclass_name}"):
            _write_implementation(w, decl.implementation)
            _write_input_sets(w, decl.input_sets)
        w.line(";")


def _write_template(w: _Writer, script: Script, template: TaskTemplate) -> None:
    body = template.body
    keyword = "compoundtask" if isinstance(body, CompoundTaskDecl) else "task"
    with w.block(
        f"tasktemplate {keyword} {template.name} of taskclass {body.taskclass_name}"
    ):
        with w.block("parameters"):
            for index, param in enumerate(template.parameters):
                suffix = ";" if index < len(template.parameters) - 1 else ""
                w.line(param + suffix)
        w.line(";")
        _write_implementation(w, body.implementation)
        _write_input_sets(w, body.input_sets)
        if isinstance(body, CompoundTaskDecl):
            for child in body.tasks:
                _write_decl(w, script, child)
            _write_outputs_mapping(w, script, body)
    w.line(";")


def format_script(script: Script) -> str:
    """Render a script in canonical concrete syntax."""
    w = _Writer()
    for name, parent in script.classes.items():
        if parent is None:
            w.line(f"class {name};")
        else:
            w.line(f"class {name} extends {parent};")
    if script.classes:
        w.line()
    for taskclass in script.taskclasses.values():
        _write_taskclass(w, taskclass)
        w.line()
    for template in script.templates.values():
        _write_template(w, script, template)
        w.line()
    for decl in script.tasks.values():
        _write_decl(w, script, decl)
        w.line()
    return w.text()
