"""Recursive-descent parser for the workflow scripting language.

Parses the §4 syntax directly into the validated schema model
(:mod:`repro.core.schema`) — the schema classes *are* the AST, so the
formatter (:mod:`repro.lang.formatter`) round-trips and the repository
service stores exactly what was parsed.

The grammar accepted (EBNF, ``;`` is a permissive separator — stray or
missing semicolons between clauses are tolerated, as the paper's own listings
are inconsistent about them)::

    script        = { item } ;
    item          = class | taskclass | task | compoundtask
                  | tasktemplate | instantiation ;
    class         = "class" IDENT ";" ;
    taskclass     = "taskclass" IDENT "{" [ "inputs" "{" {inputset} "}" ]
                                          [ "outputs" "{" {output} "}" ] "}" ;
    inputset      = "input" IDENT "{" { objdecl } "}" ;
    objdecl       = IDENT "of" "class" IDENT ;
    output        = outkind IDENT "{" { objdecl } "}" ;
    outkind       = "outcome" | "abort" "outcome" | "repeat" "outcome" | "mark" ;
    task          = "task" IDENT "of" "taskclass" IDENT "{" body "}" ;
    body          = [ implementation ] [ inputs ] ;
    implementation= "implementation" "{" prop { ("," | ";") prop } "}" ;
    prop          = STRING "is" STRING ;
    inputs        = "inputs" "{" { iset } "}" ;
    iset          = "input" IDENT "{" { dep } "}" ;
    dep           = "inputobject" IDENT "from" "{" { source } "}"
                  | "notification" "from" "{" { nsource } "}"
                  | source                       (* template shorthand *)
    source        = IDENT "of" "task" IDENT [ "if" ("output"|"input") IDENT ] ;
    nsource       = "task" IDENT "if" ("output"|"input") IDENT ;
    compoundtask  = "compoundtask" IDENT "of" "taskclass" IDENT
                    "{" { inputs | implementation | task | compoundtask
                        | instantiation | outputsmap } "}" ;
    outputsmap    = "outputs" "{" { outmap } "}" ;
    outmap        = outkind IDENT "{" { omdep } "}" ;
    omdep         = "outputobject" IDENT "from" "{" { source } "}"
                  | "notification" "from" "{" { nsource } "}" ;
    tasktemplate  = "tasktemplate" ("task"|"compoundtask") IDENT "of"
                    "taskclass" IDENT "{" "parameters" "{" { IDENT } "}"
                    <task or compound body> "}" ;
    instantiation = IDENT "of" "tasktemplate" IDENT "(" [ IDENT {"," IDENT} ] ")" ;
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from ..core.errors import ParseError
from ..core.schema import (
    CompoundTaskDecl,
    GuardKind,
    Implementation,
    InputObjectBinding,
    InputSetBinding,
    InputSetSpec,
    NotificationBinding,
    ObjectDecl,
    OutputBinding,
    OutputKind,
    OutputObjectBinding,
    OutputSpec,
    Script,
    Source,
    TaskClass,
    TaskDecl,
    TaskTemplate,
)
from .lexer import Token, TokenType, tokenize


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.script = Script()

    # -- token helpers --------------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> ParseError:
        token = token or self.peek()
        return ParseError(message, token.line, token.column)

    def expect(self, type_: TokenType) -> Token:
        token = self.peek()
        if token.type is not type_:
            raise self.error(f"expected {type_.value!r}, found {token.value!r}")
        return self.next()

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if not token.is_keyword(word):
            raise self.error(f"expected {word!r}, found {token.value!r}")
        return self.next()

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.next()
            return True
        return False

    def expect_ident(self, what: str = "identifier") -> str:
        token = self.peek()
        if token.type is not TokenType.IDENT:
            raise self.error(f"expected {what}, found {token.value!r}")
        return self.next().value

    def skip_semis(self) -> None:
        while self.peek().type in (TokenType.SEMI, TokenType.COMMA):
            self.next()

    # -- entry point ------------------------------------------------------------------

    def parse_script(self) -> Script:
        self.skip_semis()
        while self.peek().type is not TokenType.EOF:
            self.parse_item()
            self.skip_semis()
        return self.script

    def parse_item(self) -> None:
        token = self.peek()
        if token.is_keyword("class"):
            self.parse_class()
        elif token.is_keyword("taskclass"):
            self.script.add_taskclass(self.parse_taskclass())
        elif token.is_keyword("task"):
            self.script.add_task(self.parse_task())
        elif token.is_keyword("compoundtask"):
            self.script.add_task(self.parse_compoundtask())
        elif token.is_keyword("tasktemplate"):
            self.script.add_template(self.parse_template())
        elif token.type is TokenType.IDENT:
            self.parse_instantiation(into_compound=None)
        else:
            raise self.error(f"unexpected {token.value!r} at top level")

    # -- classes ------------------------------------------------------------------------

    def parse_class(self) -> None:
        self.expect_keyword("class")
        name = self.expect_ident("class name")
        extends = None
        if self.accept_keyword("extends"):
            extends = self.expect_ident("superclass name")
        self.script.add_class(name, extends)

    # -- task classes ----------------------------------------------------------------------

    def parse_taskclass(self) -> TaskClass:
        self.expect_keyword("taskclass")
        name = self.expect_ident("taskclass name")
        self.expect(TokenType.LBRACE)
        self.skip_semis()
        input_sets: List[InputSetSpec] = []
        outputs: List[OutputSpec] = []
        while not self._at_rbrace():
            if self.accept_keyword("inputs"):
                self.expect(TokenType.LBRACE)
                self.skip_semis()
                while not self._at_rbrace():
                    input_sets.append(self.parse_inputset_spec())
                    self.skip_semis()
                self.expect(TokenType.RBRACE)
            elif self.accept_keyword("outputs"):
                self.expect(TokenType.LBRACE)
                self.skip_semis()
                while not self._at_rbrace():
                    outputs.append(self.parse_output_spec())
                    self.skip_semis()
                self.expect(TokenType.RBRACE)
            else:
                raise self.error(
                    f"expected 'inputs' or 'outputs' in taskclass, found "
                    f"{self.peek().value!r}"
                )
            self.skip_semis()
        self.expect(TokenType.RBRACE)
        return TaskClass(name, tuple(input_sets), tuple(outputs))

    def parse_inputset_spec(self) -> InputSetSpec:
        self.expect_keyword("input")
        name = self.expect_ident("input set name")
        objects = self.parse_object_decls()
        return InputSetSpec(name, objects)

    def parse_output_spec(self) -> OutputSpec:
        kind = self.parse_output_kind()
        name = self.expect_ident("output name")
        objects = self.parse_object_decls()
        return OutputSpec(name, kind, objects)

    def parse_output_kind(self) -> OutputKind:
        if self.accept_keyword("abort"):
            self.expect_keyword("outcome")
            return OutputKind.ABORT
        if self.accept_keyword("repeat"):
            self.expect_keyword("outcome")
            return OutputKind.REPEAT
        if self.accept_keyword("mark"):
            return OutputKind.MARK
        self.expect_keyword("outcome")
        return OutputKind.OUTCOME

    def parse_object_decls(self) -> Tuple[ObjectDecl, ...]:
        self.expect(TokenType.LBRACE)
        self.skip_semis()
        decls: List[ObjectDecl] = []
        while not self._at_rbrace():
            obj_name = self.expect_ident("object name")
            self.expect_keyword("of")
            self.expect_keyword("class")
            class_name = self.expect_ident("class name")
            decls.append(ObjectDecl(obj_name, class_name))
            self.skip_semis()
        self.expect(TokenType.RBRACE)
        return tuple(decls)

    # -- task instances --------------------------------------------------------------------

    def parse_task(self) -> TaskDecl:
        self.expect_keyword("task")
        name = self.expect_ident("task name")
        self.expect_keyword("of")
        self.expect_keyword("taskclass")
        taskclass = self.expect_ident("taskclass name")
        self.expect(TokenType.LBRACE)
        self.skip_semis()
        implementation = Implementation()
        input_sets: Tuple[InputSetBinding, ...] = ()
        while not self._at_rbrace():
            if self.peek().is_keyword("implementation"):
                implementation = self.parse_implementation()
            elif self.peek().is_keyword("inputs"):
                input_sets = self.parse_inputs()
            else:
                raise self.error(
                    f"expected 'implementation' or 'inputs', found {self.peek().value!r}"
                )
            self.skip_semis()
        self.expect(TokenType.RBRACE)
        return TaskDecl(name, taskclass, implementation, input_sets)

    def parse_implementation(self) -> Implementation:
        self.expect_keyword("implementation")
        self.expect(TokenType.LBRACE)
        self.skip_semis()
        properties: List[Tuple[str, str]] = []
        while not self._at_rbrace():
            key = self.expect(TokenType.STRING).value
            self.expect_keyword("is")
            value = self.expect(TokenType.STRING).value
            properties.append((key, value))
            self.skip_semis()
        self.expect(TokenType.RBRACE)
        return Implementation(tuple(properties))

    def parse_inputs(self) -> Tuple[InputSetBinding, ...]:
        self.expect_keyword("inputs")
        self.expect(TokenType.LBRACE)
        self.skip_semis()
        sets: List[InputSetBinding] = []
        while not self._at_rbrace():
            sets.append(self.parse_input_set_binding())
            self.skip_semis()
        self.expect(TokenType.RBRACE)
        return tuple(sets)

    def parse_input_set_binding(self) -> InputSetBinding:
        self.expect_keyword("input")
        name = self.expect_ident("input set name")
        self.expect(TokenType.LBRACE)
        self.skip_semis()
        objects: List[InputObjectBinding] = []
        notifications: List[NotificationBinding] = []
        while not self._at_rbrace():
            token = self.peek()
            if token.is_keyword("inputobject"):
                self.next()
                obj_name = self.expect_ident("input object name")
                self.expect_keyword("from")
                objects.append(
                    InputObjectBinding(obj_name, self.parse_source_list(obj_name))
                )
            elif token.is_keyword("notification"):
                self.next()
                self.expect_keyword("from")
                notifications.append(
                    NotificationBinding(self.parse_notification_source_list())
                )
            elif token.type is TokenType.IDENT:
                # template shorthand:  i1 of task param1 if output success
                source = self.parse_object_source()
                objects.append(InputObjectBinding(source.object_name, (source,)))
            else:
                raise self.error(
                    f"expected 'inputobject', 'notification' or a shorthand "
                    f"source, found {token.value!r}"
                )
            self.skip_semis()
        self.expect(TokenType.RBRACE)
        return InputSetBinding(name, tuple(objects), tuple(notifications))

    def parse_source_list(self, consumer_object: str) -> Tuple[Source, ...]:
        self.expect(TokenType.LBRACE)
        self.skip_semis()
        sources: List[Source] = []
        while not self._at_rbrace():
            sources.append(self.parse_object_source())
            self.skip_semis()
        self.expect(TokenType.RBRACE)
        return tuple(sources)

    def parse_object_source(self) -> Source:
        object_name = self.expect_ident("source object name")
        self.expect_keyword("of")
        self.expect_keyword("task")
        task_name = self.expect_ident("task name")
        guard_kind, guard_name = self.parse_guard()
        return Source(task_name, object_name, guard_kind, guard_name)

    def parse_notification_source_list(self) -> Tuple[Source, ...]:
        self.expect(TokenType.LBRACE)
        self.skip_semis()
        sources: List[Source] = []
        while not self._at_rbrace():
            self.expect_keyword("task")
            task_name = self.expect_ident("task name")
            guard_kind, guard_name = self.parse_guard()
            sources.append(Source(task_name, None, guard_kind, guard_name))
            self.skip_semis()
        self.expect(TokenType.RBRACE)
        return tuple(sources)

    def parse_guard(self) -> Tuple[GuardKind, Optional[str]]:
        if not self.accept_keyword("if"):
            return GuardKind.ANY, None
        if self.accept_keyword("output"):
            return GuardKind.OUTPUT, self.expect_ident("output name")
        if self.accept_keyword("input"):
            return GuardKind.INPUT, self.expect_ident("input set name")
        raise self.error(f"expected 'output' or 'input' after 'if'")

    # -- compound tasks --------------------------------------------------------------------

    def parse_compoundtask(self) -> CompoundTaskDecl:
        self.expect_keyword("compoundtask")
        name = self.expect_ident("compound task name")
        self.expect_keyword("of")
        self.expect_keyword("taskclass")
        taskclass = self.expect_ident("taskclass name")
        self.expect(TokenType.LBRACE)
        self.skip_semis()
        implementation = Implementation()
        input_sets: Tuple[InputSetBinding, ...] = ()
        tasks: List[Union[TaskDecl, CompoundTaskDecl]] = []
        outputs: Tuple[OutputBinding, ...] = ()
        while not self._at_rbrace():
            token = self.peek()
            if token.is_keyword("implementation"):
                implementation = self.parse_implementation()
            elif token.is_keyword("inputs"):
                input_sets = self.parse_inputs()
            elif token.is_keyword("task"):
                tasks.append(self.parse_task())
            elif token.is_keyword("compoundtask"):
                tasks.append(self.parse_compoundtask())
            elif token.is_keyword("outputs"):
                outputs = self.parse_outputs_mapping()
            elif token.type is TokenType.IDENT:
                tasks.append(self.parse_instantiation(into_compound=tasks))
            else:
                raise self.error(
                    f"unexpected {token.value!r} inside compound task"
                )
            self.skip_semis()
        self.expect(TokenType.RBRACE)
        return CompoundTaskDecl(
            name=name,
            taskclass_name=taskclass,
            implementation=implementation,
            input_sets=input_sets,
            tasks=tuple(tasks),
            outputs=outputs,
        )

    def parse_outputs_mapping(self) -> Tuple[OutputBinding, ...]:
        self.expect_keyword("outputs")
        self.expect(TokenType.LBRACE)
        self.skip_semis()
        bindings: List[OutputBinding] = []
        while not self._at_rbrace():
            _kind = self.parse_output_kind()  # kind is declared by the class
            name = self.expect_ident("output name")
            self.expect(TokenType.LBRACE)
            self.skip_semis()
            objects: List[OutputObjectBinding] = []
            notifications: List[NotificationBinding] = []
            while not self._at_rbrace():
                token = self.peek()
                if token.is_keyword("outputobject"):
                    self.next()
                    obj_name = self.expect_ident("output object name")
                    self.expect_keyword("from")
                    objects.append(
                        OutputObjectBinding(obj_name, self.parse_source_list(obj_name))
                    )
                elif token.is_keyword("notification"):
                    self.next()
                    self.expect_keyword("from")
                    notifications.append(
                        NotificationBinding(self.parse_notification_source_list())
                    )
                else:
                    raise self.error(
                        f"expected 'outputobject' or 'notification', found "
                        f"{token.value!r}"
                    )
                self.skip_semis()
            self.expect(TokenType.RBRACE)
            bindings.append(OutputBinding(name, tuple(objects), tuple(notifications)))
            self.skip_semis()
        self.expect(TokenType.RBRACE)
        return tuple(bindings)

    # -- templates -----------------------------------------------------------------------

    def parse_template(self) -> TaskTemplate:
        self.expect_keyword("tasktemplate")
        if self.peek().is_keyword("compoundtask"):
            compound = True
            self.next()
        else:
            self.expect_keyword("task")
            compound = False
        name = self.expect_ident("template name")
        self.expect_keyword("of")
        self.expect_keyword("taskclass")
        taskclass = self.expect_ident("taskclass name")
        self.expect(TokenType.LBRACE)
        self.skip_semis()
        self.expect_keyword("parameters")
        self.expect(TokenType.LBRACE)
        self.skip_semis()
        parameters: List[str] = []
        while not self._at_rbrace():
            parameters.append(self.expect_ident("parameter name"))
            self.skip_semis()
        self.expect(TokenType.RBRACE)
        self.skip_semis()
        implementation = Implementation()
        input_sets: Tuple[InputSetBinding, ...] = ()
        tasks: List[Union[TaskDecl, CompoundTaskDecl]] = []
        outputs: Tuple[OutputBinding, ...] = ()
        while not self._at_rbrace():
            token = self.peek()
            if token.is_keyword("implementation"):
                implementation = self.parse_implementation()
            elif token.is_keyword("inputs"):
                input_sets = self.parse_inputs()
            elif compound and token.is_keyword("task"):
                tasks.append(self.parse_task())
            elif compound and token.is_keyword("compoundtask"):
                tasks.append(self.parse_compoundtask())
            elif compound and token.is_keyword("outputs"):
                outputs = self.parse_outputs_mapping()
            else:
                raise self.error(f"unexpected {token.value!r} in template body")
            self.skip_semis()
        self.expect(TokenType.RBRACE)
        if compound:
            body: Union[TaskDecl, CompoundTaskDecl] = CompoundTaskDecl(
                name=name,
                taskclass_name=taskclass,
                implementation=implementation,
                input_sets=input_sets,
                tasks=tuple(tasks),
                outputs=outputs,
            )
        else:
            body = TaskDecl(name, taskclass, implementation, input_sets)
        return TaskTemplate(name, tuple(parameters), body)

    def parse_instantiation(self, into_compound) -> Union[TaskDecl, CompoundTaskDecl]:
        """``<name> of tasktemplate <template>(<args>)``."""
        instance_name = self.expect_ident("instance name")
        self.expect_keyword("of")
        self.expect_keyword("tasktemplate")
        template_name = self.expect_ident("template name")
        self.expect(TokenType.LPAREN)
        arguments: List[str] = []
        while self.peek().type is not TokenType.RPAREN:
            arguments.append(self.expect_ident("template argument"))
            if self.peek().type is TokenType.COMMA:
                self.next()
        self.expect(TokenType.RPAREN)
        if template_name not in self.script.templates:
            raise self.error(f"unknown tasktemplate {template_name!r}")
        template = self.script.templates[template_name]
        decl = template.instantiate(instance_name, tuple(arguments))
        if into_compound is None:
            self.script.add_task(decl)
        return decl

    # -- misc -------------------------------------------------------------------------------

    def _at_rbrace(self) -> bool:
        return self.peek().type in (TokenType.RBRACE, TokenType.EOF)


def parse(text: str) -> Script:
    """Parse a script from source text (no semantic validation)."""
    return Parser(tokenize(text)).parse_script()
