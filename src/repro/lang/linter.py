"""Script linter: quality diagnostics beyond semantic validity.

The repository service accepts any *valid* script; these checks flag scripts
that are valid but probably wrong — the class of mistakes the paper's
examples show are easy to make (its own listings contain one).

Every code this linter can emit is declared (with severity and long
description) in the central registry,
:data:`repro.analysis.registry.DIAGNOSTICS`; :meth:`Linter._warn` refuses
unregistered codes, so a new check cannot silently collide with an existing
or retired code.  The live ``W0xx`` codes:

* ``W001`` dependency cycle among constituents (no repeat outcome involved):
  the tasks on the cycle can never start.
* ``W002`` simple task without a ``code`` implementation property: nothing
  can be bound at run time.
* ``W003`` constituent none of whose outputs is consumed (neither by a
  sibling nor by the compound's output mapping): its results go nowhere.
* ``W005`` task class input set never bound by an instance: that way of
  starting the task is unreachable for this instance.
* ``W007`` abort outcome nobody reacts to: when the atomic task aborts, the
  workflow silently loses the branch.
* ``W008`` unused declaration (object class, task class or template never
  referenced).

``W004`` and ``W006`` — draft checks documented in early versions of this
module but never implemented — are *retired* in the registry: permanently
reserved, never to be reused with a different meaning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from ..analysis.registry import DIAGNOSTICS
from ..core.graph import find_cycles
from ..core.schema import (
    AnyTaskDecl,
    CompoundTaskDecl,
    GuardKind,
    OutputKind,
    Script,
    TaskDecl,
)


@dataclass(frozen=True)
class LintWarning:
    code: str
    location: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.code} {self.location}: {self.message}"


class Linter:
    def __init__(self, script: Script) -> None:
        self.script = script
        self.warnings: List[LintWarning] = []
        self._used_classes: Set[str] = set()
        self._used_taskclasses: Set[str] = set()

    def lint(self) -> List[LintWarning]:
        for decl in self.script.tasks.values():
            self._lint_decl(decl, path=decl.name, top_level=True)
        self._lint_unused()
        return self.warnings

    # -- per-declaration checks ---------------------------------------------------

    def _lint_decl(self, decl: AnyTaskDecl, path: str, top_level: bool = False) -> None:
        taskclass = self.script.taskclasses.get(decl.taskclass_name)
        if taskclass is None:
            return  # validation's problem, not ours
        self._used_taskclasses.add(taskclass.name)
        for spec in taskclass.input_sets:
            for obj in spec.objects:
                self._used_classes.add(obj.class_name)
        for out in taskclass.outputs:
            for obj in out.objects:
                self._used_classes.add(obj.class_name)
        if isinstance(decl, TaskDecl):
            if decl.implementation.code is None:
                self._warn("W002", path, "no 'code' implementation property")
        if not top_level:
            # a top-level task's inputs come from the environment at
            # instantiation time, so unbound sets are normal there
            bound = {binding.name for binding in decl.input_sets}
            for spec in taskclass.input_sets:
                if spec.name not in bound:
                    self._warn(
                        "W005",
                        path,
                        f"input set {spec.name!r} of taskclass "
                        f"{taskclass.name!r} is never bound",
                    )
        if isinstance(decl, CompoundTaskDecl):
            self._lint_compound(decl, path)

    def _lint_compound(self, decl: CompoundTaskDecl, path: str) -> None:
        for cycle in find_cycles(decl, self.script):
            self._warn(
                "W001",
                path,
                f"dependency cycle among constituents: {' -> '.join(cycle)}",
            )
        consumed: Dict[str, Set[str]] = {child.name: set() for child in decl.tasks}
        any_reference: Set[str] = set()

        def note(source) -> None:
            if source.task_name in consumed:
                any_reference.add(source.task_name)
                if source.guard_kind is GuardKind.OUTPUT:
                    consumed[source.task_name].add(source.guard_name)
                elif source.guard_kind is GuardKind.ANY:
                    consumed[source.task_name].add("*")

        for child in decl.tasks:
            for binding in child.input_sets:
                for obj in binding.objects:
                    for source in obj.sources:
                        note(source)
                for notif in binding.notifications:
                    for source in notif.sources:
                        note(source)
        for out in decl.outputs:
            for obj in out.objects:
                for source in obj.sources:
                    note(source)
            for notif in out.notifications:
                for source in notif.sources:
                    note(source)

        for child in decl.tasks:
            child_path = f"{path}/{child.name}"
            child_class = self.script.taskclasses.get(child.taskclass_name)
            if child_class is None:
                continue
            if child.name not in any_reference and child_class.outputs:
                self._warn(
                    "W003",
                    child_path,
                    "none of this task's outputs is consumed by a sibling or "
                    "by the compound's outputs",
                )
            for out in child_class.outputs_of_kind(OutputKind.ABORT):
                refs = consumed.get(child.name, set())
                if out.name not in refs and "*" not in refs:
                    self._warn(
                        "W007",
                        child_path,
                        f"abort outcome {out.name!r} is never handled",
                    )
            self._lint_decl(child, child_path)

    # -- whole-script checks ----------------------------------------------------------

    def _lint_unused(self) -> None:
        for name in self.script.classes:
            if name not in self._used_classes and not any(
                parent == name for parent in self.script.classes.values()
            ):
                self._warn("W008", name, "object class is never used")
        for name in self.script.taskclasses:
            if name not in self._used_taskclasses and not self._used_by_template(name):
                self._warn("W008", name, "taskclass is never instantiated")

    def _used_by_template(self, taskclass_name: str) -> bool:
        def uses(decl: AnyTaskDecl) -> bool:
            if decl.taskclass_name == taskclass_name:
                return True
            if isinstance(decl, CompoundTaskDecl):
                return any(uses(child) for child in decl.tasks)
            return False

        return any(uses(t.body) for t in self.script.templates.values())

    def _warn(self, code: str, location: str, message: str) -> None:
        DIAGNOSTICS.require(code)  # KeyError on unknown/retired codes
        self.warnings.append(LintWarning(code, location, message))


def lint_script(script: Script) -> List[LintWarning]:
    """Run every lint check; returns findings (empty list = clean)."""
    return Linter(script).lint()
