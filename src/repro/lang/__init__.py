"""The workflow scripting language front end (DESIGN.md subsystem S1).

``parse`` turns source text into the schema model without semantic checks;
``compile_script`` parses *and* validates (what the repository service runs
on submission); ``format_script`` renders canonical source back.
"""

from ..core.errors import ParseError
from ..core.graph import check, validate_script
from ..core.schema import Script
from .dot import to_dot
from .formatter import format_script
from .lexer import Token, TokenType, tokenize
from .linter import LintWarning, lint_script
from .parser import Parser, parse


def compile_script(text: str) -> Script:
    """Parse and semantically validate a script.

    Raises :class:`~repro.core.errors.ParseError` for syntax errors and
    :class:`~repro.core.errors.ValidationReport` for semantic ones.
    """
    return check(parse(text))


__all__ = [
    "LintWarning",
    "ParseError",
    "Parser",
    "Script",
    "Token",
    "TokenType",
    "check",
    "compile_script",
    "format_script",
    "lint_script",
    "parse",
    "to_dot",
    "tokenize",
    "validate_script",
]
