"""Graphviz (DOT) export — the textual stand-in for the paper's graphical
programming environment.

Rendering conventions follow the paper's figures:

* dataflow dependencies are solid arcs, notifications dashed (Fig. 1);
* compound tasks are clusters, their constituents nested inside (Figs. 5-9);
* abort outcomes are labelled with a double border marker and marks with a
  dotted one, echoing Fig. 2's double-/dotted-border boxes.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.schema import (
    AnyTaskDecl,
    CompoundTaskDecl,
    OutputKind,
    Script,
    Source,
    TaskDecl,
)


def _quote(name: str) -> str:
    return '"' + name.replace('"', '\\"') + '"'


class _DotWriter:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    def line(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _edge_lines(
    w: _DotWriter,
    consumer_id: str,
    sources,
    notification: bool,
    scope_ids,
) -> None:
    style = "dashed" if notification else "solid"
    for source in sources:
        producer_id = scope_ids.get(source.task_name)
        if producer_id is None:
            continue
        label = ""
        if source.object_name:
            label = source.object_name
        if source.guard_name:
            label = f"{label}\\n[{source.guard_name}]" if label else f"[{source.guard_name}]"
        attrs = f'style={style}'
        if label:
            attrs += f', label="{label}", fontsize=9'
        w.line(f"{producer_id} -> {consumer_id} [{attrs}];")


def _node_id(path: str) -> str:
    return _quote(path)


def _emit_decl(
    w: _DotWriter,
    script: Script,
    decl: AnyTaskDecl,
    path: str,
    parent_scope_ids: Optional[dict],
) -> None:
    taskclass = script.taskclasses.get(decl.taskclass_name)
    if isinstance(decl, CompoundTaskDecl):
        w.line(f"subgraph cluster_{abs(hash(path)) % 10**8} {{")
        w.depth += 1
        w.line(f"label={_quote(decl.name)};")
        w.line("style=rounded;")
        port = f"{path}.<ports>"
        w.line(f"{_node_id(port)} [label=\"⟂\", shape=point];")
        inner_ids = {decl.name: _node_id(port)}
        for child in decl.tasks:
            child_path = f"{path}/{child.name}"
            inner_ids[child.name] = (
                _node_id(f"{child_path}.<ports>")
                if isinstance(child, CompoundTaskDecl)
                else _node_id(child_path)
            )
        for child in decl.tasks:
            _emit_decl(w, script, child, f"{path}/{child.name}", inner_ids)
        # compound output mapping edges terminate at the port node
        for binding in decl.outputs:
            spec = taskclass.output(binding.name) if taskclass else None
            for obj in binding.objects:
                _edge_lines(w, _node_id(port), obj.sources, False, inner_ids)
            for notif in binding.notifications:
                _edge_lines(w, _node_id(port), notif.sources, True, inner_ids)
        w.depth -= 1
        w.line("}")
    else:
        shape = "box"
        extras = ""
        if taskclass is not None:
            if taskclass.is_atomic:
                extras = ", peripheries=2"       # Fig. 2's double border
            elif taskclass.outputs_of_kind(OutputKind.MARK):
                extras = ", style=dotted"         # Fig. 9's dotted border
        w.line(f"{_node_id(path)} [label={_quote(decl.name)}, shape={shape}{extras}];")
    # input dependency edges (resolved in the enclosing scope)
    if parent_scope_ids is not None:
        consumer_id = (
            _node_id(f"{path}.<ports>")
            if isinstance(decl, CompoundTaskDecl)
            else _node_id(path)
        )
        for binding in decl.input_sets:
            for obj in binding.objects:
                _edge_lines(w, consumer_id, obj.sources, False, parent_scope_ids)
            for notif in binding.notifications:
                _edge_lines(w, consumer_id, notif.sources, True, parent_scope_ids)


def to_dot(script: Script, task_name: Optional[str] = None) -> str:
    """Render one top-level task (default: the only one) as a DOT digraph."""
    if task_name is None:
        if len(script.tasks) != 1:
            raise ValueError("script has several top-level tasks; name one")
        task_name = next(iter(script.tasks))
    decl = script.tasks[task_name]
    w = _DotWriter()
    w.line(f"digraph {_quote(task_name)} {{")
    w.depth += 1
    w.line("rankdir=LR;")
    w.line("node [fontname=Helvetica];")
    _emit_decl(w, script, decl, task_name, None)
    w.depth -= 1
    w.line("}")
    return w.text()
