"""Client-side proxies (CORBA stub analogue).

A :class:`Proxy` is bound to a caller node and a target object name; attribute
access returns a callable that performs a synchronous broker invocation, so
client code reads like a local call::

    repo = Proxy(broker, caller=client_node, target="repository")
    repo.store_script("order", text)
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..net.node import Node
from .broker import ObjectBroker


class Proxy:
    """Forward method calls on ``target`` through the broker."""

    def __init__(self, broker: ObjectBroker, caller: Optional[Node], target: str) -> None:
        # Set via object.__setattr__-free plain attributes; __getattr__ only
        # fires for *missing* attributes, so these stay directly accessible.
        self._broker = broker
        self._caller = caller
        self._target = target

    def __getattr__(self, operation: str) -> Callable[..., Any]:
        if operation.startswith("_"):
            raise AttributeError(operation)
        broker, caller, target = self._broker, self._caller, self._target
        broker.resolve(target).interface.validate_operation(operation)

        def call(*args: Any, **kwargs: Any) -> Any:
            return broker.invoke(caller, target, operation, *args, **kwargs)

        call.__name__ = operation
        return call

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Proxy {self._target} from {self._caller.name if self._caller else '?'}>"
