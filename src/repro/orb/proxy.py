"""Client-side proxies (CORBA stub analogue).

A :class:`Proxy` is bound to a caller node and a target object name; attribute
access returns a callable that performs a synchronous broker invocation, so
client code reads like a local call::

    repo = Proxy(broker, caller=client_node, target="repository")
    repo.store_script("order", text)
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..net.node import Node
from .broker import ObjectBroker, Overloaded


class Proxy:
    """Forward method calls on ``target`` through the broker."""

    def __init__(self, broker: ObjectBroker, caller: Optional[Node], target: str) -> None:
        # Set via object.__setattr__-free plain attributes; __getattr__ only
        # fires for *missing* attributes, so these stay directly accessible.
        self._broker = broker
        self._caller = caller
        self._target = target

    def __getattr__(self, operation: str) -> Callable[..., Any]:
        if operation.startswith("_"):
            raise AttributeError(operation)
        broker, caller, target = self._broker, self._caller, self._target
        broker.resolve(target).interface.validate_operation(operation)

        def call(*args: Any, **kwargs: Any) -> Any:
            return broker.invoke(caller, target, operation, *args, **kwargs)

        call.__name__ = operation
        return call

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Proxy {self._target} from {self._caller.name if self._caller else '?'}>"


def call_with_backoff(
    clock: Any,
    policy: Any,
    key: str,
    call: Callable[[], Any],
    on_result: Optional[Callable[[Any], None]] = None,
    on_give_up: Optional[Callable[[Exception], None]] = None,
    max_attempts: int = 6,
) -> None:
    """Invoke ``call`` with cooperative overload backoff (PROTOCOLS.md §13).

    An :class:`~repro.orb.broker.Overloaded` refusal schedules a retry at
    ``policy.overload_backoff(key, attempt, retry_after)`` — at least the
    servant's deterministic retry-after hint, stretched by the policy's
    jittered exponential schedule so a cohort of refused clients does not
    return as one synchronized wave (the retry storm that turns a load spike
    into a metastable outage).  After ``max_attempts`` refusals the client
    gives up: under sustained overload, turning traffic away at the edge is
    the correct terminal outcome.  Asynchronous: retries ride the event
    clock; ``on_result``/``on_give_up`` deliver the verdict.
    """

    def attempt(n: int) -> None:
        try:
            result = call()
        except Overloaded as exc:
            if n + 1 >= max_attempts:
                if on_give_up is not None:
                    on_give_up(exc)
                return
            delay = policy.overload_backoff(key, n, getattr(exc, "retry_after", 0.0))
            clock.call_after(delay, lambda: attempt(n + 1), label=f"backoff:{key}")
            return
        if on_result is not None:
            on_result(result)

    attempt(0)
