"""Marshalling for ORB invocations.

CORBA invocations copy values across the wire; object references pass by
reference.  We reproduce that boundary so services cannot accidentally share
mutable in-memory state: every argument and result is structurally copied by
:func:`marshal`, and anything that cannot legitimately cross (open handles,
arbitrary class instances that are not declared transferable) raises
:class:`MarshalError`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Set, Tuple, Type

_PRIMITIVES = (type(None), bool, int, float, str, bytes)

# Types explicitly allowed to cross the wire by structural copy.
_TRANSFERABLE: Set[type] = set()


class MarshalError(TypeError):
    """A value cannot be marshalled across the ORB."""


def transferable(cls: Type) -> Type:
    """Class decorator / registration: instances may cross ORB boundaries.

    Dataclasses are copied field-by-field; other classes must provide
    ``__marshal__() -> dict`` and ``__unmarshal__(cls, state)``.
    """
    _TRANSFERABLE.add(cls)
    return cls


def is_transferable(cls: Type) -> bool:
    return cls in _TRANSFERABLE


def marshal(value: Any, _depth: int = 0) -> Any:
    """Return a structural copy of ``value`` suitable for the far side."""
    if _depth > 100:
        raise MarshalError("value too deeply nested (possible cycle)")
    if isinstance(value, _PRIMITIVES):
        return value
    if isinstance(value, (list, tuple)):
        cls = type(value)
        copied = [marshal(v, _depth + 1) for v in value]
        if cls in (list, tuple):
            return cls(copied)
        if hasattr(cls, "_fields"):
            # namedtuple-style: the constructor takes the fields positionally,
            # not a single iterable
            return cls(*copied)
        return cls(copied)
    if isinstance(value, (set, frozenset)):
        return type(value)(marshal(v, _depth + 1) for v in value)
    if isinstance(value, dict):
        cls = type(value)
        copied_items = {
            marshal(k, _depth + 1): marshal(v, _depth + 1) for k, v in value.items()
        }
        if cls is dict:
            return copied_items
        if hasattr(value, "__marshal__") and cls in _TRANSFERABLE:
            state = marshal(value.__marshal__(), _depth + 1)
            return cls.__unmarshal__(state)
        if cls in _TRANSFERABLE:
            # registered dict subclass: preserve the type instead of silently
            # decaying to a plain dict
            return cls(copied_items)
        return copied_items
    cls = type(value)
    if cls in _TRANSFERABLE:
        if hasattr(value, "__marshal__"):
            state = marshal(value.__marshal__(), _depth + 1)
            return cls.__unmarshal__(state)
        if dataclasses.is_dataclass(value):
            fields = {
                f.name: marshal(getattr(value, f.name), _depth + 1)
                for f in dataclasses.fields(value)
            }
            return cls(**fields)
    if isinstance(value, Exception):
        # Exceptions cross the wire so remote errors surface at the caller.
        return cls(*[marshal(a, _depth + 1) for a in value.args])
    raise MarshalError(
        f"{cls.__module__}.{cls.__qualname__} is not transferable across the ORB"
    )


def marshal_call(args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> Tuple[Tuple[Any, ...], Dict[str, Any]]:
    """Marshal a full argument list."""
    return tuple(marshal(a) for a in args), {k: marshal(v) for k, v in kwargs.items()}
