"""Marshalling for ORB invocations.

CORBA invocations copy values across the wire; object references pass by
reference.  We reproduce that boundary so services cannot accidentally share
mutable in-memory state: every argument and result is structurally copied by
:func:`marshal`, and anything that cannot legitimately cross (open handles,
arbitrary class instances that are not declared transferable) raises
:class:`MarshalError`.

Two speed layers sit on top of those semantics (docs/PROTOCOLS.md §11):

* **Memoized per-type dispatch.**  The first marshal of each concrete type
  walks the classification chain (primitive? namedtuple? registered dict
  subclass? frozen dataclass? ...) once and caches a specialized handler;
  subsequent values of that type pay a single dict lookup.  Late
  ``@transferable`` registration invalidates the cache, so a type's handler
  can never go stale.
* **Zero-copy fast path.**  Deeply immutable values — primitives, tuples /
  namedtuples / frozensets whose members marshal to themselves, and frozen
  ``@transferable`` dataclasses with immutable fields — are returned *by
  reference*: sharing an immutable value cannot leak mutable state, so the
  copy would buy nothing.  Mutable containers (lists, sets, dicts, mutable
  dataclasses, ``__marshal__`` protocol classes) are structurally copied
  exactly as before.  ``set_fast_path(False)`` restores unconditional
  structural copying (used by the differential tests and benchmarks).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Type

from ..core.instrument import IOPATH_STATS

_PRIMITIVES = (type(None), bool, int, float, str, bytes)

# Types explicitly allowed to cross the wire by structural copy.
_TRANSFERABLE: Set[type] = set()

# Memoized type -> handler dispatch.  Cleared whenever the registry (or the
# fast-path mode) changes, so classification can never go stale.
_DISPATCH: Dict[type, Callable[[Any, int], Any]] = {}

# Memoized type -> immutability checker for the zero-copy fast path:
# None = instances are never deeply immutable (copy them); otherwise a
# predicate that walks the value without allocating anything.  Cleared with
# _DISPATCH — registration can turn a rejected type into a frozen
# transferable one.
_IMMUTABLE_CHECK: Dict[type, Optional[Callable[[Any, int], bool]]] = {}

# exact types whose values are immutable with no walk at all
_PRIM_EXACT = frozenset(_PRIMITIVES)

_FAST_PATH = True


class MarshalError(TypeError):
    """A value cannot be marshalled across the ORB."""


def transferable(cls: Type) -> Type:
    """Class decorator / registration: instances may cross ORB boundaries.

    Dataclasses are copied field-by-field; other classes must provide
    ``__marshal__() -> dict`` and ``__unmarshal__(cls, state)``.
    Registration invalidates the memoized dispatch cache: a type marshalled
    (and rejected, or decayed to a plain dict) before registration is
    re-classified on its next use.
    """
    _TRANSFERABLE.add(cls)
    _DISPATCH.clear()
    _IMMUTABLE_CHECK.clear()
    return cls


def is_transferable(cls: Type) -> bool:
    return cls in _TRANSFERABLE


def set_fast_path(enabled: bool) -> None:
    """Toggle the zero-copy fast path (on by default).  Disabled, every
    value is structurally copied — the pre-optimization behaviour."""
    global _FAST_PATH
    _FAST_PATH = bool(enabled)
    _DISPATCH.clear()
    _IMMUTABLE_CHECK.clear()


def marshal(value: Any, _depth: int = 0) -> Any:
    """Return ``value`` as the far side may see it: a structural copy, or
    the value itself when it is deeply immutable (sharing is unobservable)."""
    if _depth > 100:
        raise MarshalError("value too deeply nested (possible cycle)")
    cls = type(value)
    handler = _DISPATCH.get(cls)
    if handler is None:
        handler = _build_handler(cls)
        _DISPATCH[cls] = handler
    if _depth:
        return handler(value, _depth)
    IOPATH_STATS.marshal_calls += 1
    result = handler(value, 0)
    if result is value:
        IOPATH_STATS.marshal_fast_hits += 1
    return result


def marshal_call(args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> Tuple[Tuple[Any, ...], Dict[str, Any]]:
    """Marshal a full argument list."""
    return tuple(marshal(a) for a in args), {k: marshal(v) for k, v in kwargs.items()}


# -- zero-copy immutability walk ---------------------------------------------------
#
# The fast path must not pay for the copy it avoids: these predicates walk a
# value WITHOUT allocating anything, so a hit costs type lookups only and a
# miss falls straight into the ordinary structural copy.


def _items_immutable(value: Any, depth: int) -> bool:
    """Every member of an iterable is deeply immutable."""
    if depth > 100:
        return False  # give up; the copy path enforces the real limit
    for item in value:
        cls = type(item)
        if cls in _PRIM_EXACT:
            continue
        try:
            check = _IMMUTABLE_CHECK[cls]
        except KeyError:
            check = _build_immutable_check(cls)
            _IMMUTABLE_CHECK[cls] = check
        if check is None or not check(item, depth + 1):
            return False
    return True


def _build_immutable_check(cls: type) -> Optional[Callable[[Any, int], bool]]:
    """Classify ``cls`` for the zero-copy walk: a checker when instances can
    be deeply immutable, None when they must always be copied.  Mirrors the
    marshal handlers exactly — a checker may return True only where the
    corresponding handler would return the value by reference."""
    if issubclass(cls, _PRIMITIVES):
        return lambda value, depth: True
    if cls is tuple or cls is frozenset:
        return _items_immutable
    if issubclass(cls, tuple) and hasattr(cls, "_fields"):
        return _items_immutable  # namedtuple of immutables
    if (
        cls in _TRANSFERABLE
        and not hasattr(cls, "__marshal__")
        and dataclasses.is_dataclass(cls)
        and cls.__dataclass_params__.frozen
    ):
        names = tuple(f.name for f in dataclasses.fields(cls))

        def check_fields(value: Any, depth: int) -> bool:
            if depth > 100:
                return False
            for name in names:
                item = getattr(value, name)
                icls = type(item)
                if icls in _PRIM_EXACT:
                    continue
                try:
                    check = _IMMUTABLE_CHECK[icls]
                except KeyError:
                    check = _build_immutable_check(icls)
                    _IMMUTABLE_CHECK[icls] = check
                if check is None or not check(item, depth + 1):
                    return False
            return True

        return check_fields
    return None


# -- per-type handler construction -------------------------------------------------


def _build_handler(cls: type) -> Callable[[Any, int], Any]:
    """Classify ``cls`` once and return its specialized marshal handler.

    The classification order mirrors the original isinstance chain exactly,
    so per-type dispatch is observationally identical to it (modulo the
    documented by-reference returns for immutables)."""
    if issubclass(cls, _PRIMITIVES):
        return lambda value, depth: value

    if issubclass(cls, (list, tuple)):
        if cls is tuple:
            def handle_tuple(value, depth):
                if _FAST_PATH and _items_immutable(value, depth):
                    return value
                return tuple(marshal(v, depth + 1) for v in value)
            return handle_tuple
        if cls is list:
            return lambda value, depth: [marshal(v, depth + 1) for v in value]
        if hasattr(cls, "_fields"):
            # namedtuple-style: the constructor takes the fields positionally,
            # not a single iterable
            def handle_namedtuple(value, depth):
                if _FAST_PATH and _items_immutable(value, depth):
                    return value
                return cls(*[marshal(v, depth + 1) for v in value])
            return handle_namedtuple
        return lambda value, depth: cls([marshal(v, depth + 1) for v in value])

    if issubclass(cls, (set, frozenset)):
        if cls is frozenset:
            def handle_frozenset(value, depth):
                if _FAST_PATH and _items_immutable(value, depth):
                    return value
                return frozenset(marshal(v, depth + 1) for v in value)
            return handle_frozenset
        return lambda value, depth: cls(marshal(v, depth + 1) for v in value)

    if issubclass(cls, dict):
        if cls is dict:
            return lambda value, depth: {
                marshal(k, depth + 1): marshal(v, depth + 1) for k, v in value.items()
            }
        def handle_dict_subclass(value, depth):
            copied_items = {
                marshal(k, depth + 1): marshal(v, depth + 1) for k, v in value.items()
            }
            if hasattr(value, "__marshal__") and cls in _TRANSFERABLE:
                state = marshal(value.__marshal__(), depth + 1)
                return cls.__unmarshal__(state)
            if cls in _TRANSFERABLE:
                # registered dict subclass: preserve the type instead of
                # silently decaying to a plain dict
                return cls(copied_items)
            return copied_items
        return handle_dict_subclass

    if cls in _TRANSFERABLE:
        if hasattr(cls, "__marshal__"):
            def handle_protocol(value, depth):
                state = marshal(value.__marshal__(), depth + 1)
                return cls.__unmarshal__(state)
            return handle_protocol
        if dataclasses.is_dataclass(cls):
            names = [f.name for f in dataclasses.fields(cls)]
            frozen = cls.__dataclass_params__.frozen
            def handle_dataclass(value, depth):
                if frozen and _FAST_PATH:
                    check = _IMMUTABLE_CHECK.get(cls)
                    if check is None:
                        check = _build_immutable_check(cls)
                        _IMMUTABLE_CHECK[cls] = check
                    if check is not None and check(value, depth):
                        return value
                return cls(
                    **{name: marshal(getattr(value, name), depth + 1) for name in names}
                )
            return handle_dataclass

    if issubclass(cls, Exception):
        # Exceptions cross the wire so remote errors surface at the caller.
        return lambda value, depth: cls(*[marshal(a, depth + 1) for a in value.args])

    def handle_unmarshalable(value, depth):
        raise MarshalError(
            f"{cls.__module__}.{cls.__qualname__} is not transferable across the ORB"
        )
    return handle_unmarshalable
