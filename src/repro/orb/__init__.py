"""Object request broker: the CORBA analogue (see DESIGN.md §2).

Interface declarations, naming, marshalled synchronous invocation with
``CommFailure`` semantics, deferred invocation over the lossy network, and
client-side proxies.
"""

from .broker import (
    BadInterface,
    CommFailure,
    DelayedResult,
    Fenced,
    Interface,
    ObjectBroker,
    ObjectNotFound,
    Overloaded,
)
from .marshal import MarshalError, is_transferable, marshal, marshal_call, transferable
from .proxy import Proxy, call_with_backoff

__all__ = [
    "BadInterface",
    "CommFailure",
    "DelayedResult",
    "Fenced",
    "Interface",
    "MarshalError",
    "ObjectBroker",
    "ObjectNotFound",
    "Overloaded",
    "Proxy",
    "call_with_backoff",
    "is_transferable",
    "marshal",
    "marshal_call",
    "transferable",
]
