"""Object request broker: the CORBA analogue (see DESIGN.md §2).

Interface declarations, naming, marshalled synchronous invocation with
``CommFailure`` semantics, deferred invocation over the lossy network, and
client-side proxies.
"""

from .broker import BadInterface, CommFailure, Interface, ObjectBroker, ObjectNotFound
from .marshal import MarshalError, is_transferable, marshal, marshal_call, transferable
from .proxy import Proxy

__all__ = [
    "BadInterface",
    "CommFailure",
    "Interface",
    "MarshalError",
    "ObjectBroker",
    "ObjectNotFound",
    "Proxy",
    "is_transferable",
    "marshal",
    "marshal_call",
    "transferable",
]
