"""Object request broker.

The paper's services are CORBA objects reached through an ORB.  Our broker
provides the pieces the workflow system actually relies on:

* **interface declarations** (IDL analogue): a named set of operations, used
  to type-check registrations and invocations;
* **naming**: servants registered under string names, resolvable from
  anywhere;
* **invocation**: synchronous request/reply with marshalled arguments and
  results, raising :class:`CommFailure` when the caller or target node is
  crashed or partitioned — the failure CORBA surfaces as ``COMM_FAILURE`` and
  that the paper says applications "must be prepared to face".

Invocation is modelled synchronously (the simulation's transaction code runs
to completion within one event) but each call *accounts* a round-trip cost,
and :meth:`ObjectBroker.invoke_deferred` offers genuinely asynchronous
messaging where the engine needs it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..net.clock import EventClock
from ..net.network import Network
from ..net.node import Node
from .marshal import marshal, marshal_call


class CommFailure(RuntimeError):
    """Communication with the target object failed (node down / partition)."""


class Fenced(CommFailure):
    """The servant refused the invocation because the caller's view of who
    serves this name is stale (e.g. a demoted replication standby).  A
    subclass of :class:`CommFailure` so existing retry logic treats it as a
    transient routing failure — retry after re-resolving — rather than an
    application error (docs/PROTOCOLS.md §12)."""


class Overloaded(CommFailure):
    """The servant refused the invocation because its admission queue is
    full (docs/PROTOCOLS.md §13).  Carries ``retry_after``, a deterministic
    hint (derived from queue depth and controller pressure, never from a
    live RNG) for when the caller should try again.  A subclass of
    :class:`CommFailure` because CORBA surfaces resource exhaustion the same
    way as unreachability — but typed, so cooperative clients can
    distinguish "back off" from "route elsewhere"."""

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


@dataclass(frozen=True)
class DelayedResult:
    """A servant's way of modelling finite capacity: the returned ``value``
    is the reply, but it departs ``delay`` simulated seconds after the
    request was delivered (queueing + service time at the servant).  The
    synchronous :meth:`ObjectBroker.invoke` path unwraps it immediately
    (the caller blocks through the delay, which is only accounted); the
    deferred path holds the reply leg back, and drops it if the servant's
    node crashes or restarts before the modelled work completes — exactly
    as a real backlog dies with its process."""

    value: Any
    delay: float


class BadInterface(TypeError):
    """Servant or invocation does not match the declared interface."""


class ObjectNotFound(LookupError):
    """No servant registered under the requested name."""


@dataclass(frozen=True)
class Interface:
    """IDL-style interface: a name plus its operation names."""

    name: str
    operations: Tuple[str, ...]

    def validate_servant(self, servant: Any) -> None:
        missing = [op for op in self.operations if not callable(getattr(servant, op, None))]
        if missing:
            raise BadInterface(
                f"servant {type(servant).__name__} does not implement "
                f"{self.name} operations: {missing}"
            )

    def validate_operation(self, operation: str) -> None:
        if operation not in self.operations:
            raise BadInterface(f"interface {self.name} has no operation {operation!r}")


@dataclass
class _Registration:
    name: str
    interface: Interface
    servant: Any
    node: Node
    # Optional gatekeeper consulted on every invocation: returns a refusal
    # reason (-> Fenced raised at the caller) or None to admit the call.
    # Replicated services fence all client operations while not primary.
    fence: Optional[Callable[[str], Optional[str]]] = None


@dataclass
class BrokerStats:
    invocations: int = 0
    failures: int = 0
    simulated_rtt: float = 0.0


class ObjectBroker:
    """Naming + invocation for servants hosted on simulated nodes."""

    def __init__(self, clock: EventClock, network: Network, rtt: float = 2.0) -> None:
        self.clock = clock
        self.network = network
        self.rtt = rtt
        self.stats = BrokerStats()
        self._registry: Dict[str, _Registration] = {}

    # -- naming -----------------------------------------------------------------

    def register(
        self,
        name: str,
        interface: Interface,
        servant: Any,
        node: Node,
        fence: Optional[Callable[[str], Optional[str]]] = None,
    ) -> None:
        interface.validate_servant(servant)
        self._registry[name] = _Registration(name, interface, servant, node, fence)

    def unregister(self, name: str) -> None:
        self._registry.pop(name, None)

    def resolve(self, name: str) -> _Registration:
        try:
            return self._registry[name]
        except KeyError:
            raise ObjectNotFound(name) from None

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._registry))

    # -- synchronous invocation ---------------------------------------------------

    def invoke(
        self,
        caller: Optional[Node],
        target: str,
        operation: str,
        *args: Any,
        **kwargs: Any,
    ) -> Any:
        """Invoke ``operation`` on the servant named ``target``.

        Arguments and the result cross a marshalling boundary.  Raises
        :class:`CommFailure` if either endpoint is down or the pair is
        partitioned.  Exceptions raised by the servant are marshalled and
        re-raised at the caller.
        """
        registration = self.resolve(target)
        registration.interface.validate_operation(operation)
        self.stats.invocations += 1
        remote = caller is None or caller.name != registration.node.name
        if remote:
            if caller is not None and not caller.alive:
                self.stats.failures += 1
                raise CommFailure(f"caller node {caller.name!r} is down")
            if not registration.node.alive:
                self.stats.failures += 1
                raise CommFailure(f"target node {registration.node.name!r} is down")
            if caller is not None and self.network.partitioned(caller.name, registration.node.name):
                self.stats.failures += 1
                raise CommFailure(
                    f"network partition between {caller.name!r} and {registration.node.name!r}"
                )
            self.stats.simulated_rtt += self.rtt
        if registration.fence is not None:
            reason = registration.fence(operation)
            if reason is not None:
                self.stats.failures += 1
                raise Fenced(f"{target}.{operation}: {reason}")
        m_args, m_kwargs = marshal_call(args, kwargs) if remote else (args, kwargs)
        method = getattr(registration.servant, operation)
        result = method(*m_args, **m_kwargs)
        if isinstance(result, DelayedResult):
            # synchronous caller: blocks through the modelled service time
            # (accounted, like the rtt; the event itself runs to completion)
            self.stats.simulated_rtt += result.delay
            result = result.value
        return marshal(result) if remote else result

    # -- deferred (asynchronous) invocation ------------------------------------------

    def invoke_deferred(
        self,
        caller: Node,
        target: str,
        operation: str,
        args: Tuple[Any, ...] = (),
        on_reply: Optional[Callable[[Any], None]] = None,
        on_error: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        """Fire-and-callback invocation routed as two one-way messages through
        the (lossy, partitionable) network.  Either callback may never run if
        a message is lost — callers needing reliability must retry."""
        registration = self.resolve(target)
        registration.interface.validate_operation(operation)
        self.stats.invocations += 1
        m_args, _ = marshal_call(args, {})

        def perform() -> None:
            if not registration.node.alive:
                return
            if registration.fence is not None:
                # re-evaluated at delivery time: the servant may have been
                # demoted while the request leg was in flight
                reason = registration.fence(operation)
                if reason is not None:
                    self.stats.failures += 1
                    if on_error is not None:
                        failure = Fenced(f"{target}.{operation}: {reason}")
                        self._reply(registration.node, caller, lambda: on_error(failure))
                    return
            try:
                outcome = getattr(registration.servant, operation)(*m_args)
            except Exception as exc:  # marshalled back as the error reply
                if on_error is not None:
                    error = exc  # bind: `exc` is cleared when the block exits
                    self._reply(registration.node, caller, lambda: on_error(error))
                return
            delay = 0.0
            if isinstance(outcome, DelayedResult):
                delay, outcome = outcome.delay, outcome.value
            result = marshal(outcome)
            if on_reply is None:
                return
            if delay <= 0.0:
                self._reply(registration.node, caller, lambda: on_reply(result))
                return
            # modelled service time: the reply leg departs only when the
            # servant finishes the work — and not at all if its node crashed
            # (or crashed-and-recovered) in the meantime, because the queued
            # work died with the process
            stamp = registration.node.crash_count

            def depart() -> None:
                if registration.node.alive and registration.node.crash_count == stamp:
                    self._reply(registration.node, caller, lambda: on_reply(result))

            self.clock.call_after(delay, depart, label=f"orb-svc:{target}.{operation}")

        # request leg: rides the datagram network (loss, latency, partitions)
        if not caller.alive:
            raise CommFailure(f"caller node {caller.name!r} is down")
        self._datagram(caller, registration.node, perform, f"orb-req:{target}.{operation}")

    def _reply(self, from_node: Node, to_node: Node, deliver: Callable[[], None]) -> None:
        def guarded() -> None:
            if to_node.alive:
                deliver()

        self._datagram(from_node, to_node, guarded, "orb-reply")

    def _datagram(
        self, from_node: Node, to_node: Node, deliver: Callable[[], None], label: str
    ) -> None:
        """One unreliable message leg with the network's failure model.

        Delegates loss/partition/latency/duplication/reordering decisions to
        :meth:`Network.sample_delays` so ORB legs and raw datagrams share a
        single failure model, and stamps the leg with the destination's
        incarnation: a reply addressed to a coordinator that crashed and
        recovered in flight is dropped as stale, exactly like a raw datagram.
        """
        net = self.network
        net.stats.sent += 1
        delays = net.sample_delays(from_node.name, to_node.name)
        if delays is None:
            self.stats.failures += 1
            return
        stamp = to_node.crash_count

        def attempt() -> None:
            if net.partitioned(from_node.name, to_node.name):
                net.stats.dropped_partition += 1
                return
            if not to_node.alive:
                net.stats.dropped_dead += 1
                return
            if to_node.crash_count != stamp:
                net.stats.dropped_stale += 1
                return
            net.stats.delivered += 1
            deliver()

        for delay in delays:
            self.clock.call_after(delay, attempt, label=label)
