"""Chaos explorer: systematic search of the fault-schedule space.

Two passes, in the FoundationDB tradition:

1. **Exhaustive one-crash sweep** — one run per registered crash point (plus
   a torn-write variant for every point that supports it), each killing the
   owning node exactly at that protocol step.  Recovery-only points are
   paired with a preceding driver crash (``on_recover`` only runs after
   one); points only reachable through compaction or two-phase commit get
   the harness's compactor/2PC-probe enabled.
2. **Random nemesis sweep** — seeded random schedules composing one to
   three faults (crash-at-point, timed crashes, partitions, loss/dup/
   reorder bursts).  Each seed is an independent, fully reproducible
   universe.

Any run whose oracles report a violation is **shrunk** — faults are
greedily dropped while the violation persists — and the minimal schedule is
written as a JSON repro file containing the harness configuration and the
report fingerprint.  ``replay()`` re-runs a repro file and demands the new
report match the recorded fingerprint byte-for-byte (same canonical JSON),
which the determinism of the substrate guarantees for an unchanged tree.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .crashpoints import CrashPoint, catalogue
from .harness import SimHarness, SimReport
from .nemesis import (
    CrashAtPoint,
    CrashAtTime,
    DupBurst,
    KillPrimary,
    LossBurst,
    NemesisSchedule,
    Partition,
    PartitionPrimary,
    ReorderBurst,
    ResurrectStalePrimary,
)

#: Points only visited when the harness drives compaction.
_NEEDS_COMPACTOR = ("wal.checkpoint.", "exec.compact.")
#: Points only visited by the harness's two-store 2PC probe.
_NEEDS_PROBE = ("store.prepare.", "store.abort.", "txn.2pc.")
#: Points only visited with a replicated execution service.  The lease
#: grant and the promotion points additionally need a failover (the
#: bootstrap grant/promotion happen before the injector is installed), which
#: the recovery driver crash below conveniently provides: killing the
#: primary at a journal append forces a standby through acquire + promote.
_NEEDS_REPLICAS = ("repl.",)
#: The driver crash paired with recovery-only points.
_RECOVERY_DRIVER = "exec.journal.post"


@dataclass
class SweepFailure:
    """One violating schedule, after shrinking."""

    name: str
    schedule: Dict[str, Any]          # shrunk schedule, plain form
    harness: Dict[str, Any]           # SimHarness kwargs that reproduce it
    violations: List[Dict[str, str]]
    fingerprint: str                  # of the shrunk run's report
    report: Dict[str, Any]
    repro_path: Optional[str] = None

    def to_plain(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "schedule": self.schedule,
            "harness": self.harness,
            "violations": self.violations,
            "fingerprint": self.fingerprint,
            "report": self.report,
        }


@dataclass
class SweepResult:
    reports: List[SimReport] = field(default_factory=list)
    failures: List[SweepFailure] = field(default_factory=list)
    unreached: List[str] = field(default_factory=list)  # points that never fired

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"{len(self.reports)} runs, {len(self.failures)} violating "
            f"schedule(s), {len(self.unreached)} unreached point(s)"
        ]
        for failure in self.failures:
            lines.append(f"  FAIL {failure.name}: "
                         + "; ".join(v["detail"] for v in failure.violations[:3]))
            if failure.repro_path:
                lines.append(f"       repro: {failure.repro_path}")
        for name in self.unreached:
            lines.append(f"  unreached crash point: {name}")
        return "\n".join(lines)


class ChaosSweep:
    """Run the exhaustive and random sweeps; shrink and record violations."""

    def __init__(
        self,
        workload: str = "order",
        workers: int = 2,
        instances: int = 1,
        base_seed: int = 0,
        downtime: float = 30.0,
        max_time: float = 5_000.0,
        out_dir: Optional[str] = None,
        verbose: bool = False,
    ) -> None:
        self.workload = workload
        self.workers = workers
        self.instances = instances
        self.base_seed = base_seed
        self.downtime = downtime
        self.max_time = max_time
        self.out_dir = out_dir
        self.verbose = verbose

    # -- exhaustive pass -------------------------------------------------------

    def plan_for_point(
        self, point: CrashPoint, mode: str = "clean"
    ) -> Tuple[NemesisSchedule, Dict[str, Any]]:
        """The schedule + harness configuration that makes ``point`` fire."""
        faults: List[Any] = []
        replicated = point.name.startswith(_NEEDS_REPLICAS)
        if point.recovery or (replicated and point.name != "repl.tail.apply"):
            # on_recover only runs after a crash: drive one first.  For the
            # replication points the same driver kills the primary, forcing
            # the failover that makes a post-bootstrap grant/promotion happen.
            faults.append(
                CrashAtPoint(_RECOVERY_DRIVER, downtime=self.downtime)
            )
        faults.append(CrashAtPoint(point.name, mode=mode, downtime=self.downtime))
        suffix = "-torn" if mode == "torn" else ""
        schedule = NemesisSchedule(faults, name=f"point:{point.name}{suffix}")
        kwargs = self._harness_kwargs(seed=self.base_seed)
        if point.name.startswith(_NEEDS_COMPACTOR):
            kwargs["compact_every"] = 40.0
        if point.name.startswith(_NEEDS_PROBE):
            kwargs["probe_every"] = 15.0
        if replicated:
            # a short lease keeps the forced failover inside the time budget
            kwargs["replicas"] = 2
            kwargs["lease_duration"] = 30.0
        if point.name == "exec.mark.recv" and self.workload == "order":
            # the order workload emits no marks; the trip workload does
            kwargs["workload"] = "trip"
        return schedule, kwargs

    def exhaustive(self) -> SweepResult:
        """One run per crash point (torn variants included)."""
        result = SweepResult()
        for point in catalogue():
            modes = ["clean"] + (["torn"] if point.torn else [])
            for mode in modes:
                schedule, kwargs = self.plan_for_point(point, mode)
                report = self._run(schedule, kwargs)
                result.reports.append(report)
                self._log(report)
                if not any(fired[0] == point.name for fired in report.fired):
                    result.unreached.append(f"{point.name} ({mode})")
                if report.violations:
                    result.failures.append(
                        self._shrink_and_record(schedule, kwargs, report)
                    )
        return result

    # -- random pass -------------------------------------------------------------

    def random_schedule(self, seed: int) -> NemesisSchedule:
        """A reproducible random composition of one to three faults."""
        rng = random.Random(seed)
        points = [p.name for p in catalogue()]
        workers = [f"worker-node-{i + 1}" for i in range(self.workers)]
        faults: List[Any] = []
        for _ in range(rng.randint(1, 3)):
            roll = rng.random()
            if roll < 0.45:
                name = rng.choice(points)
                mode = "torn" if (rng.random() < 0.3 and
                                  any(p.torn and p.name == name
                                      for p in catalogue())) else "clean"
                faults.append(
                    CrashAtPoint(
                        name,
                        at_hit=rng.randint(1, 3),
                        mode=mode,
                        downtime=rng.choice([15.0, 30.0, 60.0]),
                    )
                )
            elif roll < 0.60:
                faults.append(
                    CrashAtTime(
                        at=round(rng.uniform(5.0, 200.0), 1),
                        node=rng.choice(["execution-node"] + workers),
                        downtime=rng.choice([15.0, 30.0, 60.0]),
                    )
                )
            elif roll < 0.75:
                cut = tuple(sorted(rng.sample(
                    workers, rng.randint(1, len(workers)))))
                faults.append(
                    Partition(
                        at=round(rng.uniform(5.0, 150.0), 1),
                        group_a=("execution-node",),
                        group_b=cut,
                        heal_after=round(rng.uniform(20.0, 80.0), 1),
                    )
                )
            elif roll < 0.85:
                faults.append(
                    LossBurst(
                        at=round(rng.uniform(0.0, 100.0), 1),
                        duration=round(rng.uniform(10.0, 60.0), 1),
                        rate=round(rng.uniform(0.1, 0.5), 2),
                    )
                )
            elif roll < 0.93:
                faults.append(
                    DupBurst(
                        at=round(rng.uniform(0.0, 100.0), 1),
                        duration=round(rng.uniform(10.0, 60.0), 1),
                        rate=round(rng.uniform(0.2, 0.8), 2),
                    )
                )
            else:
                faults.append(
                    ReorderBurst(
                        at=round(rng.uniform(0.0, 100.0), 1),
                        duration=round(rng.uniform(10.0, 60.0), 1),
                        window=round(rng.uniform(2.0, 12.0), 1),
                    )
                )
        return NemesisSchedule(faults, name=f"random-{seed}")

    def random_sweep(self, seeds: int) -> SweepResult:
        result = SweepResult()
        for index in range(seeds):
            seed = self.base_seed + index
            schedule = self.random_schedule(seed)
            kwargs = self._harness_kwargs(seed=seed)
            kwargs["compact_every"] = 60.0
            kwargs["probe_every"] = 25.0
            report = self._run(schedule, kwargs)
            result.reports.append(report)
            self._log(report)
            if report.violations:
                result.failures.append(
                    self._shrink_and_record(schedule, kwargs, report)
                )
        return result

    # -- failover pass ---------------------------------------------------------

    #: Every paper workload must survive a failover (ISSUE 9 acceptance).
    FAILOVER_WORKLOADS = ("order", "trip", "service-impact")

    def failover_schedules(self) -> List[NemesisSchedule]:
        """The canonical failover scenarios: kill the primary mid-workload
        and resurrect it later (stale-primary return), kill it with ordinary
        downtime, and isolate it from the cluster until its lease lapses."""
        return [
            NemesisSchedule(
                [KillPrimary(at=10.0, downtime=None),
                 ResurrectStalePrimary(at=200.0)],
                name="failover:kill-resurrect",
            ),
            NemesisSchedule(
                [KillPrimary(at=10.0, downtime=self.downtime)],
                name="failover:kill-primary",
            ),
            NemesisSchedule(
                [PartitionPrimary(at=10.0, heal_after=150.0)],
                name="failover:partition-heal",
            ),
        ]

    def failover_sweep(self, replicas: int = 2) -> SweepResult:
        """Run every failover scenario against every paper workload on a
        replicated execution service; additionally demand that each
        replication crash point was *visited* at least once across the pass
        (a scenario that no longer exercises promotion is itself a bug)."""
        result = SweepResult()
        visited: set = set()
        for workload in self.FAILOVER_WORKLOADS:
            for schedule in self.failover_schedules():
                kwargs = self._harness_kwargs(seed=self.base_seed)
                kwargs["workload"] = workload
                kwargs["replicas"] = replicas
                kwargs["lease_duration"] = 30.0
                report = self._run(schedule, kwargs)
                result.reports.append(report)
                self._log(report)
                visited |= {
                    name for name, count in report.points_visited.items()
                    if count > 0
                }
                if report.violations:
                    result.failures.append(
                        self._shrink_and_record(schedule, kwargs, report)
                    )
        for point in catalogue():
            if point.name.startswith(_NEEDS_REPLICAS) and point.name not in visited:
                result.unreached.append(f"{point.name} (failover sweep)")
        return result

    # -- shrinking + repro files ---------------------------------------------------

    def shrink(
        self, schedule: NemesisSchedule, kwargs: Dict[str, Any]
    ) -> Tuple[NemesisSchedule, SimReport]:
        """Greedily drop faults while the run still violates an oracle."""
        current = schedule
        report = self._run(current, kwargs)
        changed = True
        while changed and len(current.faults) > 1:
            changed = False
            for index in range(len(current.faults)):
                candidate = current.without(index)
                candidate_report = self._run(candidate, kwargs)
                if candidate_report.violations:
                    current, report = candidate, candidate_report
                    changed = True
                    break
        return current, report

    def _shrink_and_record(
        self,
        schedule: NemesisSchedule,
        kwargs: Dict[str, Any],
        report: SimReport,
    ) -> SweepFailure:
        shrunk, shrunk_report = self.shrink(schedule, kwargs)
        failure = SweepFailure(
            name=schedule.name,
            schedule=shrunk.to_plain(),
            harness=dict(kwargs),
            violations=list(shrunk_report.violations),
            fingerprint=shrunk_report.fingerprint(),
            report=shrunk_report.to_plain(),
        )
        if self.out_dir:
            os.makedirs(self.out_dir, exist_ok=True)
            slug = schedule.name.replace(":", "-").replace(".", "-")
            path = os.path.join(self.out_dir, f"repro-{slug}.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(failure.to_plain(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            failure.repro_path = path
        return failure

    # -- plumbing ----------------------------------------------------------------

    def _harness_kwargs(self, seed: int) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "workers": self.workers,
            "instances": self.instances,
            "seed": seed,
            "max_time": self.max_time,
        }

    def _run(self, schedule: NemesisSchedule, kwargs: Dict[str, Any]) -> SimReport:
        return SimHarness(schedule=schedule, **kwargs).run()

    def _log(self, report: SimReport) -> None:
        if self.verbose:
            print(report.summary())


def replay(path: str) -> Tuple[bool, str, str, SimReport]:
    """Re-run a repro file; return (reproduced, recorded_fp, new_fp, report).

    ``reproduced`` means the fresh run's canonical report is byte-for-byte
    identical to the recorded one (equal SHA-256 fingerprints).
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    schedule = NemesisSchedule.from_plain(data["schedule"])
    report = SimHarness(schedule=schedule, **data["harness"]).run()
    recorded = data["fingerprint"]
    fresh = report.fingerprint()
    return fresh == recorded, recorded, fresh, report
