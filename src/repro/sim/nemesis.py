"""Declarative nemesis schedules.

A :class:`NemesisSchedule` is a composable, JSON-serialisable list of fault
declarations — the "nemesis" of Jepsen terminology.  Schedules are pure
data: the harness interprets them against a live :class:`WorkflowSystem`
(crash-at-point faults arm the crash-point injector; time-based faults ride
the existing :class:`~repro.net.failures.FaultPlan` and the network's
loss/dup/reorder knobs).  Because they are pure data they round-trip through
repro files, shrink by dropping elements, and diff meaningfully in CI logs.

Fault kinds::

    crash_at_point   kill a node the Nth time a named protocol step runs
                     (mode "torn" also tears the in-progress WAL force)
    crash_at_time    classic wall-clock crash of a named node
    partition        sever two node groups, optionally healing later
    loss_burst       raise the datagram loss rate for a while
    dup_burst        duplicate datagrams for a while
    reorder_burst    delay ~half of all datagrams by up to a window
    load_spike       submit extra workflow instances at a sustained rate
                     (drives the overload/admission layer, §13)

Replication faults (only meaningful with ``replicas > 0``; the harness
resolves "the primary" against the live system at fire time, because which
replica holds the lease depends on the history of earlier faults)::

    kill_primary              crash whichever replica is primary at ``at``
    partition_primary         isolate the current primary from every other
                              node (lease arbiter included), heal later
    resurrect_stale_primary   recover every replica still down at ``at`` —
                              the classic stale-primary-returns scenario the
                              fencing epoch must neutralise
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from .crashpoints import ArmedCrash, point_named


@dataclass(frozen=True)
class CrashAtPoint:
    """Crash the node that makes the ``at_hit``-th visit to ``point``."""

    point: str
    at_hit: int = 1
    mode: str = "clean"             # "clean" | "torn"
    node: Optional[str] = None      # restrict to one node; None = first to hit
    downtime: Optional[float] = 30.0

    kind = "crash_at_point"

    def __post_init__(self) -> None:
        ArmedCrash(  # validates point name, mode, torn capability, at_hit
            point=self.point, at_hit=self.at_hit, mode=self.mode,
            node=self.node, downtime=self.downtime,
        )

    def to_armed(self) -> ArmedCrash:
        return ArmedCrash(
            point=self.point, at_hit=self.at_hit, mode=self.mode,
            node=self.node, downtime=self.downtime,
        )

    def describe(self) -> str:
        tear = " (torn write)" if self.mode == "torn" else ""
        who = self.node or "first visitor"
        down = "forever" if self.downtime is None else f"{self.downtime}"
        return (
            f"crash {who} at {self.point} hit {self.at_hit}{tear}, "
            f"down {down}"
        )


@dataclass(frozen=True)
class CrashAtTime:
    """Crash ``node`` at virtual time ``at``."""

    at: float
    node: str
    downtime: Optional[float] = 30.0

    kind = "crash_at_time"

    def describe(self) -> str:
        down = "forever" if self.downtime is None else f"{self.downtime}"
        return f"crash {self.node} at t={self.at}, down {down}"


@dataclass(frozen=True)
class Partition:
    """Sever ``group_a`` from ``group_b`` at ``at``; heal ``heal_after``
    later (never if None)."""

    at: float
    group_a: Tuple[str, ...]
    group_b: Tuple[str, ...]
    heal_after: Optional[float] = None

    kind = "partition"

    def describe(self) -> str:
        heal = "never healed" if self.heal_after is None else f"healed +{self.heal_after}"
        return (
            f"partition {sorted(self.group_a)} | {sorted(self.group_b)} "
            f"at t={self.at}, {heal}"
        )


@dataclass(frozen=True)
class LossBurst:
    at: float
    duration: float
    rate: float

    kind = "loss_burst"

    def describe(self) -> str:
        return f"loss rate {self.rate} during [{self.at}, {self.at + self.duration})"


@dataclass(frozen=True)
class DupBurst:
    at: float
    duration: float
    rate: float

    kind = "dup_burst"

    def describe(self) -> str:
        return f"dup rate {self.rate} during [{self.at}, {self.at + self.duration})"


@dataclass(frozen=True)
class ReorderBurst:
    at: float
    duration: float
    window: float

    kind = "reorder_burst"

    def describe(self) -> str:
        return (
            f"reorder window {self.window} during "
            f"[{self.at}, {self.at + self.duration})"
        )


@dataclass(frozen=True)
class LoadSpike:
    """Sustained arrival burst aimed straight at the execution service.

    During ``[at, at + duration)`` the harness submits ``rate`` extra
    instances per virtual second of the run's own workload script —
    admission-bypassing nothing: each submission goes through the ORB like
    any client's, so the overload layer sees the spike exactly as it would
    see a traffic storm.  ``Overloaded`` refusals are counted, not retried
    (the nemesis is an impatient client).  Spike instances are tracked by
    the no-silent-drop oracle: every admitted one must reach a decisive
    terminal state."""

    at: float
    duration: float
    rate: float                  # extra instances per virtual second

    kind = "load_spike"

    def describe(self) -> str:
        return (
            f"load spike {self.rate}/s during [{self.at}, {self.at + self.duration})"
        )


@dataclass(frozen=True)
class KillPrimary:
    """Crash whichever replica is the *current* primary at time ``at``.

    Unlike :class:`CrashAtTime` the victim is not named up front: the
    harness asks the live system for the lease holder when the fault fires,
    so a schedule can kill the second primary of a run (the one elected by
    an earlier failover) without knowing its node name in advance."""

    at: float
    downtime: Optional[float] = 30.0

    kind = "kill_primary"

    def describe(self) -> str:
        down = "forever" if self.downtime is None else f"{self.downtime}"
        return f"crash current primary at t={self.at}, down {down}"


@dataclass(frozen=True)
class PartitionPrimary:
    """Isolate the current primary from every other node at ``at`` — the
    lease arbiter included, so its lease lapses and a standby takes over
    while the old primary keeps running in its own partition.  Heal
    ``heal_after`` later (never if None)."""

    at: float
    heal_after: Optional[float] = None

    kind = "partition_primary"

    def describe(self) -> str:
        heal = "never healed" if self.heal_after is None else f"healed +{self.heal_after}"
        return f"isolate current primary at t={self.at}, {heal}"


@dataclass(frozen=True)
class ResurrectStalePrimary:
    """Recover every replica node still down at ``at``.

    Paired after a ``KillPrimary(downtime=None)`` this is the stale-primary
    resurrection: the dead ex-primary comes back believing it owns the
    instances, and the fencing epoch must force it down to standby."""

    at: float

    kind = "resurrect_stale_primary"

    def describe(self) -> str:
        return f"resurrect downed replicas at t={self.at}"


_FAULT_TYPES: Dict[str, Type] = {
    cls.kind: cls
    for cls in (CrashAtPoint, CrashAtTime, Partition, LossBurst, DupBurst,
                ReorderBurst, LoadSpike, KillPrimary, PartitionPrimary,
                ResurrectStalePrimary)
}

Fault = Any  # union of the dataclasses above


def fault_to_plain(fault: Fault) -> Dict[str, Any]:
    data = asdict(fault)
    data["kind"] = fault.kind
    return data


def fault_from_plain(data: Dict[str, Any]) -> Fault:
    data = dict(data)
    kind = data.pop("kind")
    try:
        cls = _FAULT_TYPES[kind]
    except KeyError:
        raise ValueError(f"unknown fault kind {kind!r}") from None
    if cls is Partition:
        data["group_a"] = tuple(data["group_a"])
        data["group_b"] = tuple(data["group_b"])
    return cls(**data)


@dataclass
class NemesisSchedule:
    """An ordered bag of fault declarations plus a label for reports."""

    faults: List[Fault] = field(default_factory=list)
    name: str = ""

    # -- composition --------------------------------------------------------

    def add(self, fault: Fault) -> "NemesisSchedule":
        self.faults.append(fault)
        return self

    def __len__(self) -> int:
        return len(self.faults)

    def without(self, index: int) -> "NemesisSchedule":
        """A copy with the ``index``-th fault dropped (shrinking step)."""
        kept = [f for i, f in enumerate(self.faults) if i != index]
        return NemesisSchedule(kept, name=f"{self.name}-drop{index}")

    def crash_faults(self) -> List[CrashAtPoint]:
        return [f for f in self.faults if isinstance(f, CrashAtPoint)]

    def network_quiet_at(self) -> float:
        """Earliest time after which no *time-based* fault is still active
        (unhealed partitions count as never quiet)."""
        quiet = 0.0
        for fault in self.faults:
            if isinstance(fault, (LossBurst, DupBurst, ReorderBurst, LoadSpike)):
                quiet = max(quiet, fault.at + fault.duration)
            elif isinstance(fault, Partition):
                if fault.heal_after is None:
                    return float("inf")
                quiet = max(quiet, fault.at + fault.heal_after)
            elif isinstance(fault, PartitionPrimary):
                if fault.heal_after is None:
                    return float("inf")
                quiet = max(quiet, fault.at + fault.heal_after)
            elif isinstance(fault, (CrashAtTime, KillPrimary,
                                    ResurrectStalePrimary)):
                quiet = max(quiet, fault.at)
        return quiet

    def describe(self) -> str:
        if not self.faults:
            return "(no faults)"
        return "; ".join(fault.describe() for fault in self.faults)

    # -- serialisation ------------------------------------------------------

    def to_plain(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "faults": [fault_to_plain(fault) for fault in self.faults],
        }

    @classmethod
    def from_plain(cls, data: Dict[str, Any]) -> "NemesisSchedule":
        return cls(
            faults=[fault_from_plain(item) for item in data.get("faults", [])],
            name=data.get("name", ""),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_plain(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "NemesisSchedule":
        return cls.from_plain(json.loads(text))
