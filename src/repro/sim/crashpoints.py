"""Crash points: named protocol steps where a schedule may kill a node.

The durability story of the execution stack rests on a handful of precise
boundaries — "the WAL force is the durability point", "the journal write
commits before the tree mutates", "2PC participants are in doubt between
PREPARE and the decision".  Sampling random crash *times* almost never lands
on those boundaries; this module lets a simulation schedule land on them
*every* time.

Protocol code is instrumented with calls like::

    crash_point("wal.force.pre", scope=self)

which are no-ops (one global load and a ``None`` check) unless a
:class:`CrashPointInjector` is installed.  The injector maps ``scope``
objects (stores, WALs, services, transaction managers) to simulated nodes;
when an armed fault's point and hit count match, the injector crashes the
owning node *mid-step* — stable storage drops its unforced WAL suffix, the
volatile state evaporates — and raises :class:`SimulatedCrash` to unwind the
Python stack exactly as a real machine failure would cut it short.

``SimulatedCrash`` derives from ``BaseException`` on purpose: servant code
legitimately catches ``Exception`` (a worker converts implementation errors
into failure replies; the transaction manager retries aborts).  A machine
crash must not be convertible into an application-level reply.

Every crash point is declared once in :data:`CATALOGUE` so the chaos
explorer can enumerate them exhaustively and the docs can render the
name → file → protocol-step table (docs/PROTOCOLS.md §9).  ``crash_point``
rejects undeclared names, so the catalogue cannot silently drift from the
instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple


class SimulatedCrash(BaseException):
    """A crash-point fault fired: the hosting node is now down.

    Raised *after* the node has been crashed (network detached, stable store
    truncated to its durable prefix) so that unwinding the stack is the only
    thing left to do.  Harness code catches this at the event-loop boundary
    and lets the simulation continue.
    """

    def __init__(self, point: str, node: str) -> None:
        super().__init__(f"simulated crash of {node!r} at crash point {point!r}")
        self.point = point
        self.node = node


@dataclass(frozen=True)
class CrashPoint:
    """One declared instrumentation site."""

    name: str
    module: str          # repo-relative file holding the call site
    step: str            # protocol step, for the docs table
    torn: bool = False   # supports torn-write injection (WAL force sites)
    recovery: bool = False  # only reachable while recovering from a crash


#: The full crash-point catalogue.  Order matters: the exhaustive sweep runs
#: the points in this order, so runs are comparable across revisions.
CATALOGUE: Tuple[CrashPoint, ...] = (
    # --- write-ahead log (the durability boundary itself) -------------------
    CrashPoint("wal.force.pre", "src/repro/txn/wal.py",
               "before any appended record becomes durable", torn=True),
    CrashPoint("wal.force.post", "src/repro/txn/wal.py",
               "all appended records durable, force returning"),
    CrashPoint("wal.checkpoint.pre", "src/repro/txn/wal.py",
               "before the CHECKPOINT record is appended"),
    CrashPoint("wal.checkpoint.forced", "src/repro/txn/wal.py",
               "CHECKPOINT durable, pre-checkpoint records not yet truncated"),
    CrashPoint("wal.checkpoint.post", "src/repro/txn/wal.py",
               "log truncated to the checkpoint"),
    # --- object store (transactional application) ---------------------------
    CrashPoint("store.log_updates.post", "src/repro/txn/store.py",
               "BEGIN/UPDATE records appended, still volatile"),
    CrashPoint("store.prepare.pre", "src/repro/txn/store.py",
               "before the PREPARE vote is logged"),
    CrashPoint("store.prepare.post", "src/repro/txn/store.py",
               "PREPARE vote forced (participant now in doubt)"),
    CrashPoint("store.commit.pre", "src/repro/txn/store.py",
               "before the COMMIT record is appended"),
    CrashPoint("store.commit.forced", "src/repro/txn/store.py",
               "COMMIT durable, after-images not yet installed"),
    CrashPoint("store.commit.post", "src/repro/txn/store.py",
               "after-images installed in the committed cache"),
    CrashPoint("store.abort.pre", "src/repro/txn/store.py",
               "before the ABORT record is logged"),
    # --- transaction manager (commit protocol) ------------------------------
    CrashPoint("txn.commit.pre", "src/repro/txn/manager.py",
               "top-level commit entered, nothing logged yet"),
    CrashPoint("txn.2pc.prepared", "src/repro/txn/manager.py",
               "every participant voted, decision not yet recorded"),
    CrashPoint("txn.2pc.decided", "src/repro/txn/manager.py",
               "commit decision forced, phase 2 not yet run"),
    CrashPoint("txn.commit.post", "src/repro/txn/manager.py",
               "top-level commit complete"),
    # --- execution service (coordination journal) ---------------------------
    CrashPoint("exec.instantiate.persisted", "src/repro/services/execution.py",
               "instance meta committed, runtime not yet built"),
    CrashPoint("exec.journal.pre", "src/repro/services/execution.py",
               "journal entry keyed, persistence transaction not yet run"),
    CrashPoint("exec.journal.post", "src/repro/services/execution.py",
               "journal entry committed, not yet applied to the tree"),
    CrashPoint("exec.reply.recv", "src/repro/services/execution.py",
               "worker reply received, before dedup against the journal"),
    CrashPoint("exec.reply.applied", "src/repro/services/execution.py",
               "reply journaled and applied, successors not yet dispatched"),
    CrashPoint("exec.mark.recv", "src/repro/services/execution.py",
               "early-release mark received, before dedup"),
    CrashPoint("exec.compact.pre", "src/repro/services/execution.py",
               "compaction requested, checkpoint not yet started"),
    CrashPoint("exec.compact.post", "src/repro/services/execution.py",
               "store checkpoint complete"),
    CrashPoint("exec.recover.pre", "src/repro/services/execution.py",
               "recovery entered, no instance replayed yet", recovery=True),
    CrashPoint("exec.recover.replayed", "src/repro/services/execution.py",
               "all journals replayed, sweeper not yet re-armed",
               recovery=True),
    # --- worker ------------------------------------------------------------
    CrashPoint("worker.execute.pre", "src/repro/services/worker.py",
               "work request accepted, implementation not yet run"),
    CrashPoint("worker.execute.post", "src/repro/services/worker.py",
               "implementation finished, reply not yet sent"),
    # --- replication (hot standby + lease failover) -------------------------
    CrashPoint("repl.lease.grant", "src/repro/replication/lease.py",
               "lease acquire accepted, grant not yet persisted"),
    CrashPoint("repl.tail.apply", "src/repro/replication/replica.py",
               "standby received a log batch, nothing applied yet"),
    CrashPoint("repl.promote.pre", "src/repro/replication/replica.py",
               "lease won, promotion not yet started", recovery=True),
    CrashPoint("repl.promote.post", "src/repro/replication/replica.py",
               "standby fully promoted, serving as primary", recovery=True),
)

_BY_NAME: Dict[str, CrashPoint] = {point.name: point for point in CATALOGUE}


def catalogue() -> Tuple[CrashPoint, ...]:
    """The declared crash points, in sweep order."""
    return CATALOGUE


def point_named(name: str) -> CrashPoint:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown crash point {name!r}") from None


@dataclass
class ArmedCrash:
    """One armed crash fault: fire when ``point`` is visited ``at_hit`` times
    by a bound scope (optionally restricted to one node)."""

    point: str
    at_hit: int = 1
    mode: str = "clean"            # "clean" | "torn"
    node: Optional[str] = None     # restrict to this node; None = first to hit
    downtime: Optional[float] = 30.0  # None = stays down
    hits_seen: int = 0
    fired: bool = False

    def __post_init__(self) -> None:
        point = point_named(self.point)   # validates the name
        if self.mode not in ("clean", "torn"):
            raise ValueError(f"unknown crash mode {self.mode!r}")
        if self.mode == "torn" and not point.torn:
            raise ValueError(f"crash point {self.point!r} does not support torn writes")
        if self.at_hit < 1:
            raise ValueError("at_hit must be >= 1")


class CrashPointInjector:
    """Routes crash-point visits to armed faults.

    The harness binds protocol-layer *scopes* (an ``ObjectStore``, its
    ``WriteAheadLog``, an ``ExecutionService``, a ``TaskWorker``, a
    ``TransactionManager``) to the simulated node that hosts them.  Visits
    from unbound scopes — e.g. the repository store, which the chaos
    harness does not target — are ignored, which keeps hit counting
    deterministic regardless of what else lives in the simulated world.

    ``crash_callback(node_name, mode, scope)`` must perform the actual
    crash: torn-force the WAL when ``mode == "torn"``, drop the unforced
    suffix of every store on the node, detach the node, and (optionally)
    schedule its recovery.  The injector then raises :class:`SimulatedCrash`.
    """

    def __init__(
        self, crash_callback: Callable[[str, "ArmedCrash", Any], None]
    ) -> None:
        self._crash = crash_callback
        self._scopes: Dict[int, str] = {}
        self._scope_refs: List[Any] = []  # keep scopes alive so ids stay valid
        self.armed: List[ArmedCrash] = []
        self.visits: Dict[str, int] = {}
        self.fired: List[Tuple[str, str]] = []  # (point, node) in firing order

    # -- wiring ------------------------------------------------------------

    def bind(self, scope: Any, node_name: str) -> None:
        """Declare that crash-point visits from ``scope`` belong to node
        ``node_name``."""
        self._scopes[id(scope)] = node_name
        self._scope_refs.append(scope)

    def arm(self, fault: ArmedCrash) -> ArmedCrash:
        self.armed.append(fault)
        return fault

    def node_for(self, scope: Any) -> Optional[str]:
        return self._scopes.get(id(scope))

    # -- the hot path -------------------------------------------------------

    def visit(self, name: str, scope: Any) -> None:
        node = self._scopes.get(id(scope))
        if node is None:
            return
        self.visits[name] = self.visits.get(name, 0) + 1
        for fault in self.armed:
            if fault.fired or fault.point != name:
                continue
            if fault.node is not None and fault.node != node:
                continue
            fault.hits_seen += 1
            if fault.hits_seen == fault.at_hit:
                fault.fired = True
                self.fired.append((name, node))
                self._crash(node, fault, scope)
                raise SimulatedCrash(name, node)

    def pending(self) -> List[ArmedCrash]:
        """Armed faults that have not fired yet."""
        return [fault for fault in self.armed if not fault.fired]


# -- the module-level hook ---------------------------------------------------

_active: Optional[CrashPointInjector] = None


def install(injector: CrashPointInjector) -> None:
    """Install ``injector`` as the process-wide crash-point sink."""
    global _active
    _active = injector


def uninstall() -> None:
    global _active
    _active = None


def active_injector() -> Optional[CrashPointInjector]:
    return _active


def crash_point(name: str, scope: Any = None) -> None:
    """Mark a named protocol step.  Free when no injector is installed."""
    injector = _active
    if injector is not None:
        if name not in _BY_NAME:
            raise ValueError(f"crash point {name!r} is not in the catalogue")
        injector.visit(name, scope)
