"""Invariant oracles for the simulation harness.

Each oracle inspects the live system and returns violations — statements of
fact about a broken guarantee, with enough detail to debug the schedule that
produced it.  The harness runs the cheap oracles continuously (between event
slices, when no transaction can be mid-commit) and the full set after every
recovery and at quiescence.

Oracles and the guarantees they police:

``store-agreement``
    The committed cache of every :class:`~repro.txn.store.ObjectStore` must
    equal a replay of its durable WAL.  The cache is *defined* as a
    projection of the log; divergence means a commit installed state that
    the log cannot reproduce (a lost write after the next crash).
``journal-contiguity``
    Every instance in the durable ``instance-index`` must have its meta
    object and journal entries ``0..journal_len-1`` all present.  A gap
    means the journal-append transaction committed non-atomically.
``exactly-once``
    No two journal entries may resolve the same task execution, and no mark
    may be journaled twice.  Duplicate worker replies (at-least-once
    dispatch, duplicated datagrams, hedged sends) must be filtered before
    the journal, not after.
``replay-agreement``
    For every live instance, replaying its durable journal from scratch
    must reproduce the live tree's status and outcome.  This is the paper's
    recovery guarantee checked *without* crashing: if replay disagrees with
    the tree now, a crash right now would change history.
``durability``
    Once an instance has been *observed* terminal (the observation implies
    the deciding entry was journaled, because entries are journaled before
    they are applied), no later crash/recovery may change its status or
    outcome.
``liveness``
    Once every node is healthy and the network is quiet, every instance
    must reach a terminal status within the quiescence grace period.
    Stuck-forever is a real bug (lost wakeup, un-redispatched flight), not
    an acceptable outcome of a finite fault schedule.
``no-silent-drop``
    Every instance the execution service *accepted* under load (returned an
    id for, instead of refusing with ``Overloaded``) must end in a decisive
    journaled terminal state — completed, aborted, failed, or a journaled
    ``overloaded`` shed.  Turning work away loudly is legal; losing it
    quietly is the overload bug this layer exists to prevent (§13).

Replication oracles (``replicas > 0`` only; docs/PROTOCOLS.md §12):

``epoch-monotone``
    Within each instance journal — on every replica's store — the fencing
    epoch stamped on successive entries must be non-decreasing.  A decrease
    means a stale primary appended after a successor was elected.
``single-writer-per-epoch``
    Across all replica stores, every fencing epoch maps to at most one
    writer name.  Two writers sharing an epoch is split-brain made durable.
``single-primary``
    At any observation point, at most one *live* replica may hold the
    PRIMARY role under an unexpired lease.  (A demoted-but-not-yet-ticked
    stale primary with an expired lease is legal; one actively holding an
    overlapping lease is not.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..txn import wal as wal_mod
from ..txn.store import ObjectStore

TERMINAL_STATUSES = ("completed", "aborted", "failed")


@dataclass(frozen=True)
class OracleViolation:
    """One broken invariant."""

    oracle: str     # which oracle fired (see module docstring)
    subject: str    # instance id or store name
    detail: str     # human-readable specifics
    phase: str = ""  # when it was detected: "continuous" | "recovery" | "quiescence"

    def to_plain(self) -> Dict[str, str]:
        return {
            "oracle": self.oracle,
            "subject": self.subject,
            "detail": self.detail,
            "phase": self.phase,
        }

    def __str__(self) -> str:
        where = f" [{self.phase}]" if self.phase else ""
        return f"{self.oracle}({self.subject}){where}: {self.detail}"


def check_store_agreement(store: ObjectStore, phase: str = "") -> List[OracleViolation]:
    """Committed cache == replay of the durable log.

    Only meaningful at a consistent point — between simulation events (no
    transaction is mid-commit; commits run synchronously inside one event)
    or right after ``store.recover()``.
    """
    replayed = wal_mod.replay(store.wal.durable_records())
    live = store.snapshot()
    if replayed == live:
        return []
    missing = sorted(set(replayed) - set(live))
    extra = sorted(set(live) - set(replayed))
    differing = sorted(
        key for key in set(replayed) & set(live) if replayed[key] != live[key]
    )
    return [
        OracleViolation(
            "store-agreement",
            store.name,
            f"cache diverges from durable log: missing={missing[:5]} "
            f"extra={extra[:5]} differing={differing[:5]}",
            phase,
        )
    ]


def _journal_entries(
    store: ObjectStore, iid: str
) -> Tuple[Optional[Dict[str, Any]], List[Optional[Dict[str, Any]]]]:
    meta = store.get_committed(f"instance:{iid}:meta")
    if meta is None:
        return None, []
    journal = store.get_committed_many(
        f"instance:{iid}:journal:{n}" for n in range(meta["journal_len"])
    )
    return meta, journal


def check_journal_integrity(
    store: ObjectStore, phase: str = ""
) -> List[OracleViolation]:
    """Contiguity + exactly-once over every instance's durable journal."""
    violations: List[OracleViolation] = []
    for iid in store.get_committed("instance-index", []):
        meta, journal = _journal_entries(store, iid)
        if meta is None:
            violations.append(
                OracleViolation(
                    "journal-contiguity", iid,
                    "instance is indexed but has no meta object", phase,
                )
            )
            continue
        holes = [n for n, entry in enumerate(journal) if entry is None]
        if holes:
            violations.append(
                OracleViolation(
                    "journal-contiguity", iid,
                    f"journal_len={meta['journal_len']} but entries "
                    f"{holes[:5]} are missing", phase,
                )
            )
        seen: Dict[Tuple, int] = {}
        for n, entry in enumerate(journal):
            if entry is None:
                continue
            kind = entry.get("type")
            if kind in ("result", "failure"):
                key = ("result", entry["path"], entry["exec"])
            elif kind == "mark":
                key = ("mark", entry["path"], entry["exec"], entry["name"])
            elif kind == "deadline":
                key = ("deadline", entry["path"], entry["exec"])
            else:
                continue  # reconfig / force_abort / external may legally repeat
            if key in seen:
                violations.append(
                    OracleViolation(
                        "exactly-once", iid,
                        f"journal entries {seen[key]} and {n} both record "
                        f"{key}", phase,
                    )
                )
            else:
                seen[key] = n
    return violations


def check_replay_agreement(service: Any, phase: str = "") -> List[OracleViolation]:
    """Replaying each live instance's durable journal must land on the live
    tree's (status, outcome).  ``service`` is an ExecutionService; typed as
    Any to keep this module import-light."""
    if not getattr(service, "durable", False):
        return []
    violations: List[OracleViolation] = []
    for iid, runtime in sorted(service.runtimes.items()):
        shadow = service._replay(iid)
        if shadow is None:
            violations.append(
                OracleViolation(
                    "replay-agreement", iid,
                    "live instance has no durable meta to replay from", phase,
                )
            )
            continue
        live = (runtime.tree.status.value, runtime.tree.root.machine.outcome)
        replayed = (shadow.tree.status.value, shadow.tree.root.machine.outcome)
        if live != replayed:
            violations.append(
                OracleViolation(
                    "replay-agreement", iid,
                    f"live tree is {live} but journal replay yields {replayed}",
                    phase,
                )
            )
    return violations


def observe_terminal(
    service: Any, recorded: Dict[str, Tuple[str, Optional[str]]]
) -> None:
    """Record the first observed terminal (status, outcome) per instance.

    Entries are journaled before they are applied to the tree, and under
    journal batching the execution service flushes its buffered entries
    within the same event that drives the tree terminal (the terminal
    barrier in ``_dispatch_pending``) — so by the time the harness can
    observe a terminal tree between events, the deciding entry is durable.
    It is from that moment on that losing it becomes a durability
    violation.
    """
    for iid, runtime in service.runtimes.items():
        status = runtime.tree.status.value
        if status in TERMINAL_STATUSES and iid not in recorded:
            recorded[iid] = (status, runtime.tree.root.machine.outcome)


def check_durability(
    service: Any,
    recorded: Mapping[str, Tuple[str, Optional[str]]],
    phase: str = "",
) -> List[OracleViolation]:
    """No previously-observed committed outcome may change or vanish."""
    violations: List[OracleViolation] = []
    for iid, (status, outcome) in sorted(recorded.items()):
        runtime = service.runtimes.get(iid)
        if runtime is None:
            violations.append(
                OracleViolation(
                    "durability", iid,
                    f"instance was observed {status}/{outcome} but is now "
                    f"gone from the execution service", phase,
                )
            )
            continue
        now = (runtime.tree.status.value, runtime.tree.root.machine.outcome)
        if now != (status, outcome):
            violations.append(
                OracleViolation(
                    "durability", iid,
                    f"instance was observed {status}/{outcome} but is now "
                    f"{now[0]}/{now[1]}", phase,
                )
            )
    return violations


def check_atomic_commit(
    store_a: ObjectStore,
    store_b: ObjectStore,
    key: str = "probe-counter",
    phase: str = "",
) -> List[OracleViolation]:
    """2PC atomicity: the probe counter incremented in both participant
    stores under one transaction must never diverge.  Only meaningful once
    in-doubt participants have been resolved (the harness checks after
    recovery resolution, never mid-outage)."""
    a = store_a.get_committed(key, 0)
    b = store_b.get_committed(key, 0)
    if a == b:
        return []
    return [
        OracleViolation(
            "atomic-commit",
            f"{store_a.name}+{store_b.name}",
            f"{key} diverged: {store_a.name}={a} {store_b.name}={b}",
            phase,
        )
    ]


def check_epoch_fencing(
    stores: List[ObjectStore], phase: str = ""
) -> List[OracleViolation]:
    """Fencing-epoch safety over the durable journals of every replica.

    *Monotonicity*: within one instance journal, entry epochs never
    decrease — a decrease means a deposed primary appended after its
    successor.  *Single writer per epoch*: across all stores, an epoch is
    owned by exactly one writer name — two writers sharing an epoch is
    split-brain made durable.  Entries without an epoch stamp (epoch 0)
    predate replication and are skipped.
    """
    violations: List[OracleViolation] = []
    writers: Dict[int, Dict[str, str]] = {}  # epoch -> writer -> first site
    for store in stores:
        for iid in store.get_committed("instance-index", []):
            meta, journal = _journal_entries(store, iid)
            if meta is None:
                continue
            high = 0
            for n, entry in enumerate(journal):
                if entry is None:
                    continue
                epoch = entry.get("epoch") or 0
                if not epoch:
                    continue
                if epoch < high:
                    violations.append(
                        OracleViolation(
                            "epoch-monotone", iid,
                            f"journal entry {n} in {store.name} carries epoch "
                            f"{epoch} after an entry with epoch {high}", phase,
                        )
                    )
                high = max(high, epoch)
                writer = entry.get("writer")
                if writer:
                    writers.setdefault(epoch, {}).setdefault(
                        writer, f"{store.name}:{iid}:{n}"
                    )
    for epoch, seen in sorted(writers.items()):
        if len(seen) > 1:
            detail = ", ".join(
                f"{writer} (first at {site})" for writer, site in sorted(seen.items())
            )
            violations.append(
                OracleViolation(
                    "single-writer-per-epoch", f"epoch-{epoch}",
                    f"multiple writers journaled entries under one fencing "
                    f"epoch: {detail}", phase,
                )
            )
    return violations


def check_single_primary(
    replicas: List[Tuple[Any, Any]], now: float, phase: str = ""
) -> List[OracleViolation]:
    """At most one live replica may act as primary under an unexpired lease.

    ``replicas`` is ``[(node, service), ...]``.  A deposed primary that has
    not yet noticed its lease lapsed is legal (its local expiry is in the
    past); two replicas both believing they hold *currently valid* leases is
    the split-brain the lease arbiter exists to prevent.
    """
    holders: List[Tuple[str, int]] = []
    for node, service in replicas:
        if not node.alive or not service.is_primary():
            continue
        lease = getattr(service, "lease", None) or {}
        if lease.get("holder") == service.name and lease.get("expires_at", 0.0) > now:
            holders.append((service.name, service.epoch))
    if len(holders) <= 1:
        return []
    detail = ", ".join(f"{name} (epoch {epoch})" for name, epoch in sorted(holders))
    return [
        OracleViolation(
            "single-primary", "lease",
            f"{len(holders)} live replicas hold the primary role under "
            f"unexpired leases: {detail}", phase,
        )
    ]


def check_no_silent_drop(
    service: Any, submitted: Mapping[str, str], phase: str = "quiescence"
) -> List[OracleViolation]:
    """Overload honesty (docs/PROTOCOLS.md §13): every instance the service
    *accepted* — returned an id for, instead of raising ``Overloaded`` — must
    end in a decisive, journaled terminal state.  Shedding is allowed;
    vanishing is not.  A shed instance must both be terminal in memory and
    carry its ``overloaded`` entry in the durable journal, so a crash cannot
    resurrect it into limbo.

    ``submitted`` maps instance id -> a short provenance label (e.g.
    ``"spike@120.0"``) used in violation messages.
    """
    violations: List[OracleViolation] = []
    for iid, origin in sorted(submitted.items()):
        runtime = service.runtimes.get(iid)
        if runtime is None:
            violations.append(
                OracleViolation(
                    "no-silent-drop", iid,
                    f"accepted instance ({origin}) is gone from the execution "
                    f"service without a decisive outcome", phase,
                )
            )
            continue
        status = runtime.tree.status.value
        if status not in TERMINAL_STATUSES:
            violations.append(
                OracleViolation(
                    "no-silent-drop", iid,
                    f"accepted instance ({origin}) never reached a decisive "
                    f"state: status {status!r}", phase,
                )
            )
            continue
        error = runtime.tree.error or ""
        if status == "failed" and error.startswith("overloaded") and getattr(
            service, "durable", False
        ):
            meta, journal = _journal_entries(service.store, iid)
            entries = [e for e in journal if e and e.get("type") == "overloaded"]
            if meta is None or not entries:
                violations.append(
                    OracleViolation(
                        "no-silent-drop", iid,
                        f"instance ({origin}) was shed in memory but its "
                        f"journal records no 'overloaded' entry — the shed "
                        f"would not survive a crash", phase,
                    )
                )
    return violations


def check_liveness(
    service: Any, expected: List[str], phase: str = "quiescence"
) -> List[OracleViolation]:
    """Every expected instance must be present and terminal."""
    violations: List[OracleViolation] = []
    for iid in expected:
        runtime = service.runtimes.get(iid)
        if runtime is None:
            violations.append(
                OracleViolation(
                    "liveness", iid,
                    "instance missing from a healthy execution service", phase,
                )
            )
            continue
        status = runtime.tree.status.value
        if status not in TERMINAL_STATUSES:
            detail = (
                f"status {status!r} with {len(runtime.in_flight)} in-flight "
                f"and {len(runtime.external)} external tasks after quiescence"
            )
            violations.append(OracleViolation("liveness", iid, detail, phase))
    return violations
