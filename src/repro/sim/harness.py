"""Deterministic simulation harness.

A :class:`SimHarness` runs one workload on a fresh
:class:`~repro.services.system.WorkflowSystem` while a
:class:`~repro.sim.nemesis.NemesisSchedule` injects faults underneath it —
crash-at-protocol-step faults through the crash-point injector, time-based
faults (crashes, partitions, loss/dup/reorder bursts, load spikes) through
the existing :class:`~repro.net.failures.FaultPlan` and the event clock —
and the invariant oracles of
:mod:`repro.sim.oracles` watch the whole run.  The result is a
:class:`SimReport`: final instance outcomes, every violation, every crash,
network counters, and a fingerprint over the canonical JSON form so two runs
of the same (schedule, seed) can be compared byte-for-byte.

Determinism is inherited from the substrate: one
:class:`~repro.net.clock.EventClock` orders all events, all randomness is
seeded, and crash points count *visits* rather than sampling times — so the
same schedule always kills the same node in the same protocol step with the
same stack above it.

Crash mechanics
---------------

When a crash fires (at a point or a scheduled time) the harness plays the
machine's death exactly:

1. for a ``torn`` fault at a WAL force, :meth:`WriteAheadLog.torn_force`
   first makes every pending record except the last durable — the classic
   torn write;
2. every :class:`~repro.txn.store.ObjectStore` on the node crashes — the
   unforced WAL suffix vanishes, the committed cache is rebuilt from the
   durable log, the (volatile) lock table resets;
3. the node itself crashes — network detached, timers dead, incarnation
   bumped;
4. recovery is scheduled ``downtime`` later (stores rebuild their caches,
   the node re-attaches under its new incarnation, services replay their
   journals) — unless ``downtime`` is None, in which case the machine stays
   down and the liveness oracle is waived.

The :class:`~repro.sim.crashpoints.SimulatedCrash` that unwinds the Python
stack is caught at the event-loop boundary in :meth:`SimHarness._advance`
(and around the synchronous client calls ``deploy``/``instantiate``, which
run servant code on the caller's stack).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..net.failures import FaultPlan
from ..net.node import Node
from ..orb.broker import CommFailure, Overloaded
from ..overload import OverloadConfig
from ..services.system import WorkflowSystem
from ..txn import wal as wal_mod
from ..txn.manager import TransactionManager
from ..txn.store import ObjectStore
from ..txn.wal import WriteAheadLog
from ..workloads import paper_order, paper_service_impact, paper_trip
from . import oracles
from .crashpoints import (
    ArmedCrash,
    CrashPointInjector,
    SimulatedCrash,
    install,
    uninstall,
)
from .nemesis import (
    CrashAtPoint,
    CrashAtTime,
    DupBurst,
    KillPrimary,
    LoadSpike,
    LossBurst,
    NemesisSchedule,
    Partition,
    PartitionPrimary,
    ReorderBurst,
    ResurrectStalePrimary,
)


@dataclass(frozen=True)
class Workload:
    """A deployable script plus its implementations and per-instance inputs."""

    name: str
    script_name: str
    text: str
    root_task: str
    binder: Callable[[Any], Any]          # registry -> registry (bind impls)
    inputs: Callable[[int], Dict[str, Any]]  # instance index -> initial inputs


WORKLOADS: Dict[str, Workload] = {
    "order": Workload(
        "order", "order", paper_order.SCRIPT_TEXT, paper_order.ROOT_TASK,
        lambda reg: paper_order.default_registry(registry=reg),
        lambda i: {"order": f"order-{i + 1}"},
    ),
    "trip": Workload(
        "trip", "trip", paper_trip.SCRIPT_TEXT, paper_trip.ROOT_TASK,
        lambda reg: paper_trip.default_registry(registry=reg),
        lambda i: {"user": f"user-{i + 1}"},
    ),
    "service-impact": Workload(
        "service-impact", "service-impact", paper_service_impact.SCRIPT_TEXT,
        paper_service_impact.ROOT_TASK,
        lambda reg: paper_service_impact.default_registry(registry=reg),
        lambda i: {"alarmsSource": f"alarm-feed-{i + 1}"},
    ),
}


@dataclass
class SimReport:
    """Everything one harness run produced, in JSON-serialisable form."""

    workload: str
    seed: int
    workers: int
    schedule: Dict[str, Any]
    instances: Dict[str, Dict[str, Any]]
    violations: List[Dict[str, str]] = field(default_factory=list)
    crashes: List[Dict[str, Any]] = field(default_factory=list)
    fired: List[List[str]] = field(default_factory=list)   # (point, node) pairs
    unfired: List[str] = field(default_factory=list)       # armed but never hit
    points_visited: Dict[str, int] = field(default_factory=dict)
    network: Dict[str, int] = field(default_factory=dict)
    end_time: float = 0.0
    replicas: int = 0
    replication: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    spike: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_plain(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "workers": self.workers,
            "schedule": self.schedule,
            "instances": self.instances,
            "violations": self.violations,
            "crashes": self.crashes,
            "fired": self.fired,
            "unfired": self.unfired,
            "points_visited": self.points_visited,
            "network": self.network,
            "end_time": self.end_time,
            "replicas": self.replicas,
            "replication": self.replication,
            "spike": self.spike,
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, fixed separators — the byte string
        the fingerprint (and therefore replay comparison) is defined over."""
        return json.dumps(self.to_plain(), sort_keys=True, separators=(",", ":"))

    def fingerprint(self) -> str:
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def summary(self) -> str:
        outcome = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        statuses = ",".join(
            f"{iid}={info['status']}" for iid, info in sorted(self.instances.items())
        )
        return (
            f"[{outcome}] workload={self.workload} seed={self.seed} "
            f"crashes={len(self.crashes)} t={self.end_time:.1f} {statuses}"
        )


class SimHarness:
    """Run one nemesis schedule against one workload and report."""

    def __init__(
        self,
        schedule: Optional[NemesisSchedule] = None,
        workload: str = "order",
        seed: int = 0,
        workers: int = 2,
        instances: int = 1,
        max_time: float = 5_000.0,
        quiesce_grace: float = 600.0,
        check_every: float = 25.0,
        settle: float = 250.0,
        loss_rate: float = 0.0,
        compact_every: Optional[float] = None,
        probe_every: Optional[float] = None,
        replicas: int = 0,
        lease_duration: float = 60.0,
        repl_interval: float = 5.0,
        service_time: float = 0.0,
        worker_lanes: int = 1,
        overload: Optional[OverloadConfig] = None,
    ) -> None:
        if workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {workload!r}; choose from {sorted(WORKLOADS)}"
            )
        self.schedule = schedule or NemesisSchedule()
        self.workload = workload
        self.seed = seed
        self.workers = workers
        self.instances = instances
        self.max_time = max_time
        self.quiesce_grace = quiesce_grace
        self.check_every = check_every
        self.settle = settle
        self.loss_rate = loss_rate
        self.compact_every = compact_every
        self.probe_every = probe_every
        self.replicas = replicas
        self.lease_duration = lease_duration
        self.repl_interval = repl_interval
        self.service_time = service_time
        self.worker_lanes = worker_lanes
        self.overload = overload
        # run state (populated by run())
        self._probe_manager: Optional[TransactionManager] = None
        self._probe_stores: List[ObjectStore] = []
        self._system: Optional[WorkflowSystem] = None
        self._injector: Optional[CrashPointInjector] = None
        self._nodes: Dict[str, Node] = {}
        self._stores: Dict[str, List[Any]] = {}
        self._managers: Dict[str, List[TransactionManager]] = {}
        self._crashes: List[Dict[str, Any]] = []
        self._violations: List[oracles.OracleViolation] = []
        self._violation_keys: Set[Tuple[str, str, str]] = set()
        self._terminal_seen: Dict[str, Tuple[str, Optional[str]]] = {}
        self._spike_submitted: Dict[str, str] = {}
        self._spike_refused: int = 0

    # -- setup ----------------------------------------------------------------

    def run(self) -> SimReport:
        spec = WORKLOADS[self.workload]
        system = WorkflowSystem(
            workers=self.workers, seed=self.seed, loss_rate=self.loss_rate,
            replicas=self.replicas, lease_duration=self.lease_duration,
            repl_interval=self.repl_interval, overload=self.overload,
            worker_service_time=self.service_time,
            worker_lanes=self.worker_lanes,
        )
        spec.binder(system.registry)
        self._system = system
        nodes = [
            system.repository_node,
            system.execution_node,
            system.client_node,
            *system.worker_nodes,
        ]
        if system.replica_nodes:
            nodes += system.replica_nodes[1:]  # replica 1 IS execution-node
        if system.lease_node is not None:
            nodes.append(system.lease_node)
        self._nodes = {node.name: node for node in nodes}
        # Only the execution node (and, replicated, its peers plus the lease
        # arbiter) owns chaos-targeted stable storage; the repository is
        # deliberately left unbound so deploy-time visits do not shift hit
        # counts (see CrashPointInjector docstring).
        injector = CrashPointInjector(self._on_crash)
        if system.execution_replicas:
            for node, service in zip(system.replica_nodes, system.execution_replicas):
                self._stores[node.name] = [service.store]
                self._managers[node.name] = [service.manager]
                injector.bind(service.store, node.name)
                injector.bind(service.store.wal, node.name)
                injector.bind(service.manager, node.name)
                injector.bind(service, node.name)
            self._stores["lease-node"] = [system.lease_store]
            self._managers["lease-node"] = [system.lease.manager]
            injector.bind(system.lease_store, "lease-node")
            injector.bind(system.lease_store.wal, "lease-node")
            injector.bind(system.lease.manager, "lease-node")
            injector.bind(system.lease, "lease-node")
        else:
            self._stores = {"execution-node": [system.execution_store]}
            self._managers = {"execution-node": [system.execution.manager]}
            injector.bind(system.execution_store, "execution-node")
            injector.bind(system.execution_store.wal, "execution-node")
            injector.bind(system.execution.manager, "execution-node")
            injector.bind(system.execution, "execution-node")
        for node, worker in zip(system.worker_nodes, system.workers):
            injector.bind(worker, node.name)
        if self.probe_every is not None:
            # Two scratch stores on the execution node plus a manager whose
            # decision log is the execution store: the only code path in the
            # system that runs genuine two-phase commit, so the prepare/2PC
            # crash points (and in-doubt recovery) get exercised.
            self._probe_stores = [ObjectStore("probe-a"), ObjectStore("probe-b")]
            self._probe_manager = TransactionManager(
                "probe-tm", decision_store=system.execution_store
            )
            self._stores["execution-node"].extend(self._probe_stores)
            for store in self._probe_stores:
                injector.bind(store, "execution-node")
                injector.bind(store.wal, "execution-node")
            injector.bind(self._probe_manager, "execution-node")
        self._injector = injector
        for fault in self.schedule.crash_faults():
            injector.arm(fault.to_armed())
        plan = FaultPlan(system.clock)
        for fault in self.schedule.faults:
            if isinstance(fault, CrashAtTime):
                system.clock.call_at(
                    fault.at,
                    lambda f=fault: self._crash_node(
                        f.node, point=None, mode="clean", downtime=f.downtime
                    ),
                    label=f"nemesis:crash:{fault.node}",
                )
            elif isinstance(fault, Partition):
                plan.partition_at(
                    system.network, fault.at, set(fault.group_a),
                    set(fault.group_b), fault.heal_after,
                )
            elif isinstance(fault, LossBurst):
                plan.loss_burst(system.network, fault.at, fault.duration, fault.rate)
            elif isinstance(fault, DupBurst):
                plan.dup_burst(system.network, fault.at, fault.duration, fault.rate)
            elif isinstance(fault, ReorderBurst):
                plan.reorder_burst(
                    system.network, fault.at, fault.duration, fault.window
                )
            elif isinstance(fault, KillPrimary):
                system.clock.call_at(
                    fault.at,
                    lambda f=fault: self._kill_primary(f),
                    label="nemesis:kill-primary",
                )
            elif isinstance(fault, PartitionPrimary):
                system.clock.call_at(
                    fault.at,
                    lambda f=fault: self._partition_primary(f),
                    label="nemesis:partition-primary",
                )
            elif isinstance(fault, ResurrectStalePrimary):
                system.clock.call_at(
                    fault.at,
                    self._resurrect_replicas,
                    label="nemesis:resurrect",
                )
            elif isinstance(fault, LoadSpike):
                self._arm_load_spike(fault, spec)
        plan.arm()
        if self.compact_every is not None:
            self._arm_compactor()
        if self.probe_every is not None:
            self._arm_prober()
        install(injector)
        try:
            self._deploy(spec)
            iids = self._instantiate_all(spec)
            self._drive(iids)
        finally:
            uninstall()
        return self._report(iids)

    def _arm_compactor(self) -> None:
        system = self._system
        interval = float(self.compact_every)

        def tick() -> None:
            # reschedule first: a SimulatedCrash inside compact() must not
            # silence all future compactions
            system.clock.call_after(interval, tick, label="harness:compact")
            service = system.primary_execution()
            if service is not None:
                # always the primary: compacting a demoted standby's store
                # would fork its log from the stream the primary ships
                service.compact()

        system.clock.call_after(interval, tick, label="harness:compact")

    def _arm_prober(self) -> None:
        """Periodic 2PC probe: one transaction increments a counter in both
        probe stores (two participants → genuine two-phase commit, with the
        decision forced in the execution store's log), then a second
        transaction writes and deliberately aborts.  The atomic-commit
        oracle later demands the two counters never diverge — a crash
        anywhere inside the protocol must either commit both or neither
        once in-doubt participants are resolved."""
        system = self._system
        interval = float(self.probe_every)
        store_a, store_b = self._probe_stores
        manager = self._probe_manager

        def tick() -> None:
            system.clock.call_after(interval, tick, label="harness:probe")
            if not system.execution_node.alive:
                return

            def body(txn) -> None:
                a = txn.read(store_a, "probe-counter", 0)
                b = txn.read(store_b, "probe-counter", 0)
                txn.write(store_a, "probe-counter", a + 1)
                txn.write(store_b, "probe-counter", b + 1)

            manager.run(body)
            scratch = manager.begin()
            scratch.write(store_b, "probe-scratch", system.clock.now)
            scratch.abort(reason="probe abort")

        system.clock.call_after(interval, tick, label="harness:probe")

    def _arm_load_spike(self, fault: LoadSpike, spec: Workload) -> None:
        """Schedule the spike's submissions on the event clock.

        Each submission rides the ORB proxy directly — ``system.instantiate``
        drives the clock, which is illegal inside a clock callback — so the
        admission layer sees the spike exactly as client traffic.  The
        nemesis is an impatient client: an ``Overloaded`` refusal is counted
        and never retried; any other ``CommFailure`` means an outage ate the
        request before the service accepted it, so nothing is owed."""
        system = self._system
        proxy = system.execution_proxy()
        count = max(1, int(fault.rate * fault.duration))
        step = fault.duration / count
        for index in range(count):
            at = fault.at + index * step

            def fire(t: float = at, i: int = index) -> None:
                try:
                    iid = proxy.instantiate(
                        spec.script_name, spec.root_task, "main",
                        dict(spec.inputs(1_000 + i)),
                    )
                except Overloaded:
                    self._spike_refused += 1
                except CommFailure:
                    pass
                else:
                    self._spike_submitted[iid] = f"spike@{t:g}"

            system.clock.call_at(at, fire, label=f"nemesis:spike:{index}")

    # -- crash machinery --------------------------------------------------------

    def _on_crash(self, node_name: str, fault: ArmedCrash, scope: Any) -> None:
        """Injector callback: make the crash real before the stack unwinds."""
        if fault.mode == "torn" and isinstance(scope, WriteAheadLog):
            scope.torn_force()
        self._crash_node(
            node_name, point=fault.point, mode=fault.mode, downtime=fault.downtime
        )

    def _crash_node(
        self,
        node_name: str,
        point: Optional[str],
        mode: str,
        downtime: Optional[float],
    ) -> None:
        node = self._nodes[node_name]
        if not node.alive:
            return
        for store in self._stores.get(node_name, ()):
            store.crash()
        # transaction managers are in-memory: their active-transaction
        # table and cached commit decisions die with the machine (durable
        # decisions live in the decision store's log, nowhere else)
        managers = list(self._managers.get(node_name, ()))
        if node_name == "execution-node" and self._probe_manager is not None:
            managers.append(self._probe_manager)
        for manager in managers:
            manager._active.clear()
            manager._decisions.clear()
        node.crash()
        self._crashes.append(
            {
                "node": node_name,
                "time": self._system.clock.now,
                "point": point,
                "mode": mode,
                "downtime": downtime,
            }
        )
        if downtime is not None:
            self._system.clock.call_after(
                downtime,
                lambda: self._recover_node(node_name),
                label=f"harness:recover:{node_name}",
            )

    def _recover_node(self, node_name: str) -> None:
        node = self._nodes[node_name]
        if node.alive:
            return
        for store in self._stores.get(node_name, ()):
            store.recover()
        if node_name == "execution-node":
            self._resolve_in_doubt()
        node.recover()  # may raise SimulatedCrash via a recovery crash point
        self._check("recovery", deep=True)

    # -- replication faults (resolved against the live system at fire time) -------

    def _primary_node_name(self) -> Optional[str]:
        """Node hosting the current primary, or None mid-failover."""
        system = self._system
        service = system.primary_execution()
        if service is None:
            return None
        if not system.execution_replicas:
            return system.execution_node.name
        for node, candidate in zip(system.replica_nodes, system.execution_replicas):
            if candidate is service:
                return node.name
        return None

    def _kill_primary(self, fault: KillPrimary) -> None:
        name = self._primary_node_name()
        if name is None:
            return  # no live primary this instant: the fault fizzles
        self._crash_node(
            name, point="nemesis:kill-primary", mode="clean",
            downtime=fault.downtime,
        )

    def _partition_primary(self, fault: PartitionPrimary) -> None:
        name = self._primary_node_name()
        if name is None:
            return
        network = self._system.network
        network.partition({name}, set(self._nodes) - {name})
        if fault.heal_after is not None:
            self._system.clock.call_after(
                fault.heal_after,
                lambda: network.heal({name}),  # every edge touching the victim
                label="nemesis:heal-primary",
            )

    def _resurrect_replicas(self) -> None:
        """Recover every still-downed replica (the stale-primary return)."""
        system = self._system
        nodes = system.replica_nodes or [system.execution_node]
        for node in nodes:
            if not node.alive:
                self._recover_node(node.name)

    def _resolve_in_doubt(self) -> None:
        """Finish 2PC for transactions caught between PREPARE and the
        decision: presumed abort unless the coordinator's decision log (the
        execution store) says commit.  Completing the record and re-replaying
        the log is all a redo-only participant needs."""
        if self._probe_manager is None:
            return
        for store in self._probe_stores:
            for tid in list(store.in_doubt()):
                committed = self._probe_manager.decision(tid)
                store.wal.append(
                    wal_mod.COMMIT if committed else wal_mod.ABORT, tid
                )
                store.wal.force()
                store.recover()

    # -- oracle plumbing ----------------------------------------------------------

    def _record(self, found: List[oracles.OracleViolation]) -> None:
        for violation in found:
            key = (violation.oracle, violation.subject, violation.detail)
            if key in self._violation_keys:
                continue
            self._violation_keys.add(key)
            self._violations.append(violation)

    def _check(self, phase: str, deep: bool = False) -> None:
        system = self._system
        found: List[oracles.OracleViolation] = []
        for stores in self._stores.values():
            for store in stores:
                found += oracles.check_store_agreement(store, phase)
        if system.execution_replicas:
            exec_stores = [r.store for r in system.execution_replicas]
            found += oracles.check_epoch_fencing(exec_stores, phase)
            found += oracles.check_single_primary(
                list(zip(system.replica_nodes, system.execution_replicas)),
                system.clock.now, phase,
            )
        else:
            exec_stores = [system.execution_store]
        for store in exec_stores:
            found += oracles.check_journal_integrity(store, phase)
        primary = system.primary_execution()
        if primary is not None:
            # terminals are only *recorded* once replicated to the full ISR
            # (a group-acked barrier survives any single failover); base
            # services report settled unconditionally, so this gate is a
            # no-op for the unreplicated layout
            if primary.replication_settled():
                oracles.observe_terminal(primary, self._terminal_seen)
            found += oracles.check_durability(
                primary, self._terminal_seen, phase
            )
            if self._probe_stores and system.execution_node.alive:
                found += oracles.check_atomic_commit(*self._probe_stores, phase=phase)
            if deep:
                found += oracles.check_replay_agreement(primary, phase)
        self._record(found)

    # -- driving --------------------------------------------------------------------

    def _advance(self, delta: float) -> None:
        """Advance virtual time, absorbing simulated crashes at the event
        boundary (the crash callback already did all the state work)."""
        clock = self._system.clock
        target = clock.now + delta
        while True:
            try:
                clock.run(until=target)
                return
            except SimulatedCrash:
                continue

    def _all_alive(self) -> bool:
        return all(node.alive for node in self._nodes.values())

    def _all_terminal(self, iids: List[str]) -> bool:
        service = self._system.primary_execution()
        if service is None:
            return False
        for iid in iids:
            runtime = service.runtimes.get(iid)
            if runtime is None:
                return False
            if runtime.tree.status.value not in oracles.TERMINAL_STATUSES:
                return False
        return True

    def _await_recovery(self) -> None:
        """Wait out an outage after a crash interrupted a client call."""
        deadline = self._system.clock.now + self.quiesce_grace
        while self._system.clock.now < deadline:
            if self._all_alive():
                return
            self._advance(self.check_every)
            self._check("continuous")

    def _deploy(self, spec: Workload) -> None:
        for _ in range(5):
            try:
                self._system.deploy(spec.script_name, spec.text)
                return
            except (SimulatedCrash, CommFailure):
                self._await_recovery()
        raise RuntimeError("could not deploy workload script")

    def _instantiate_all(self, spec: Workload) -> List[str]:
        iids: List[str] = []
        for index in range(self.instances):
            iid = self._instantiate_one(spec, index, iids)
            if iid is None:
                break  # node stays down: nothing more can be created
            iids.append(iid)
        return iids

    def _instantiate_one(
        self, spec: Workload, index: int, known: List[str]
    ) -> Optional[str]:
        """Instantiate once, riding out crashes mid-call.

        A crash may land anywhere inside the synchronous ``instantiate``
        path — before or after the instance meta was committed — so after
        recovery the harness never *predicts* the id: it asks the recovered
        service which instances exist and only retries when nothing new was
        persisted.
        """
        system = self._system
        for _ in range(8):
            try:
                return system.instantiate(
                    spec.script_name, spec.root_task, spec.inputs(index)
                )
            except (SimulatedCrash, CommFailure):
                pass
            self._await_recovery()
            service = system.primary_execution()
            if service is None:
                if system.execution_replicas:
                    continue  # failover may still be electing a successor
                return None  # the only execution node stays down
            fresh = sorted(set(service.runtimes) - set(known))
            if fresh:
                return fresh[0]
        return None

    def _drive(self, iids: List[str]) -> None:
        system = self._system
        deadline = system.clock.now + self.max_time
        # a load spike only exerts pressure if the run is still alive when
        # it fires: never declare quiescence before its window has passed
        spike_until = max(
            (f.at + f.duration for f in self.schedule.faults
             if isinstance(f, LoadSpike)),
            default=0.0,
        )
        terminal_since: Optional[float] = None
        while system.clock.now < deadline:
            self._advance(self.check_every)
            self._check("continuous")
            if system.clock.now < spike_until:
                continue
            if self._all_terminal(iids + sorted(self._spike_submitted)):
                if not self._injector.pending():
                    break
                # armed faults still waiting: give late protocol activity
                # (compaction ticks, sweeps) a bounded chance to hit them
                if terminal_since is None:
                    terminal_since = system.clock.now
                elif system.clock.now - terminal_since >= self.settle:
                    break
            else:
                terminal_since = None
        healable = self._healable()
        if healable:
            guard = system.clock.now + self.quiesce_grace
            while system.clock.now < guard:
                if self._all_alive() and self._all_terminal(
                    iids + sorted(self._spike_submitted)
                ):
                    break
                self._advance(self.check_every)
                self._check("continuous")
        self._check("quiescence", deep=True)
        if healable and self._all_alive():
            primary = system.primary_execution()
            if primary is not None:
                self._record(oracles.check_liveness(primary, iids))
                if self._spike_submitted:
                    self._record(oracles.check_no_silent_drop(
                        primary, self._spike_submitted
                    ))
            else:
                self._record([oracles.OracleViolation(
                    "liveness", "primary",
                    "no replica holds the primary role although every node "
                    "is healthy and the network is quiet", "quiescence",
                )])

    def _healable(self) -> bool:
        """Liveness is only owed when every fault eventually heals."""
        resurrects = [
            f.at for f in self.schedule.faults
            if isinstance(f, ResurrectStalePrimary)
        ]
        for fault in self.schedule.faults:
            if isinstance(fault, (CrashAtPoint, CrashAtTime)) and fault.downtime is None:
                return False
            if isinstance(fault, KillPrimary) and fault.downtime is None:
                # a later resurrection brings the victim back
                if not any(at > fault.at for at in resurrects):
                    return False
            if isinstance(fault, (Partition, PartitionPrimary)) and fault.heal_after is None:
                return False
        return True

    # -- reporting -------------------------------------------------------------------

    def _report(self, iids: List[str]) -> SimReport:
        system = self._system
        service = system.primary_execution()
        instances: Dict[str, Dict[str, Any]] = {}
        for iid in iids:
            runtime = service.runtimes.get(iid) if service is not None else None
            if runtime is None:
                instances[iid] = {"status": "lost", "outcome": None, "error": None}
            else:
                instances[iid] = {
                    "status": runtime.tree.status.value,
                    "outcome": runtime.tree.root.machine.outcome,
                    "error": runtime.tree.error,
                }
        return SimReport(
            workload=self.workload,
            seed=self.seed,
            workers=self.workers,
            schedule=self.schedule.to_plain(),
            instances=instances,
            violations=[v.to_plain() for v in self._violations],
            crashes=self._crashes,
            fired=[[point, node] for point, node in self._injector.fired],
            unfired=[fault.point for fault in self._injector.pending()],
            points_visited=dict(sorted(self._injector.visits.items())),
            network=system.network.stats.as_dict(),
            end_time=system.clock.now,
            replicas=self.replicas,
            replication={
                svc.name: {
                    "node": node.name,
                    "alive": node.alive,
                    "role": svc.role.value,
                    "epoch": svc.epoch,
                    "promotions": svc.repl_stats["promotions"],
                    "demotions": svc.repl_stats["demotions"],
                    "resyncs": svc.repl_stats["resyncs"],
                }
                for node, svc in zip(system.replica_nodes, system.execution_replicas)
            },
            spike={
                "accepted": len(self._spike_submitted),
                "refused": self._spike_refused,
            },
        )
