"""Deterministic simulation-testing harness (FoundationDB/Jepsen style).

Layers over the existing clock/network/txn stack:

* :mod:`repro.sim.crashpoints` — named protocol steps (``wal.force.pre``,
  ``exec.journal.post``, …) where a schedule can kill a node mid-step,
  including torn-write injection at WAL force sites;
* :mod:`repro.sim.nemesis` — declarative, composable, JSON-serialisable
  fault schedules (crash-at-point, partition/heal, loss/dup/reorder bursts);
* :mod:`repro.sim.oracles` — invariant oracles checked continuously and at
  quiescence (exactly-once application, durability, journal/store
  agreement, liveness);
* :mod:`repro.sim.harness` — runs a workload under a schedule and reports
  violations;
* :mod:`repro.sim.explorer` — exhaustive one-crash-per-point sweeps, seeded
  random nemesis runs, greedy shrinking, and replayable JSON repro files
  (the ``repro chaos-sweep`` CLI).

Import note: production modules (``repro.txn``, ``repro.services``) import
:func:`crash_point` from :mod:`repro.sim.crashpoints`, so this ``__init__``
must not import the harness layers eagerly — that would close an import
cycle back through the services.  The heavier modules are loaded lazily via
``__getattr__``.
"""

from .crashpoints import (
    CATALOGUE,
    ArmedCrash,
    CrashPoint,
    CrashPointInjector,
    SimulatedCrash,
    catalogue,
    crash_point,
    point_named,
)

__all__ = [
    "ArmedCrash",
    "CATALOGUE",
    "CrashPoint",
    "CrashPointInjector",
    "SimulatedCrash",
    "catalogue",
    "crash_point",
    "point_named",
    # lazily loaded:
    "ChaosSweep",
    "NemesisSchedule",
    "OracleViolation",
    "SimHarness",
    "SimReport",
]

_LAZY = {
    "NemesisSchedule": "nemesis",
    "OracleViolation": "oracles",
    "SimHarness": "harness",
    "SimReport": "harness",
    "ChaosSweep": "explorer",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, name)
