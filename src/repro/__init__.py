"""repro — reproduction of *A Language for Specifying the Composition of
Reliable Distributed Applications* (Ranno, Shrivastava, Wheater; ICDCS 1998).

The package provides, end to end:

* the workflow **scripting language** of the paper (§4): parser, validator,
  pretty-printer (:mod:`repro.lang`), a programmatic builder and the schema
  model with task life-cycle and dependency semantics (:mod:`repro.core`);
* two **execution engines** sharing one semantics: a deterministic local
  engine (:mod:`repro.engine`) and the paper's distributed transactional
  workflow system (:mod:`repro.services`) built on simulated substrates —
  transactions (:mod:`repro.txn`), nodes/network (:mod:`repro.net`) and an
  ORB (:mod:`repro.orb`);
* the paper's three example applications and synthetic workloads
  (:mod:`repro.workloads`), and the related-work baselines
  (:mod:`repro.baselines`).

Quickstart::

    from repro import compile_script, LocalEngine, ImplementationRegistry, outcome

    script = compile_script(SOURCE_TEXT)
    registry = ImplementationRegistry()
    registry.register("refGreet", lambda ctx: outcome("done", msg="hi"))
    result = LocalEngine(registry).run(script, inputs={...})
"""

from .core import (
    GuardKind,
    ObjectRef,
    OutputKind,
    ReconfigurationError,
    SchemaError,
    Script,
    ScriptBuilder,
    TaskState,
    ValidationReport,
    WorkflowError,
    from_input,
    from_output,
    from_task,
    ref,
)
from .engine import (
    ConcurrentEngine,
    ConcurrentWorkflow,
    ImplementationRegistry,
    LocalEngine,
    LocalWorkflow,
    PendingExternal,
    TaskContext,
    TaskResult,
    WorkflowResult,
    WorkflowStatus,
    abort,
    outcome,
    pending,
    repeat,
)
from .lang import compile_script, format_script, parse
from .resilience import (
    BreakerConfig,
    CircuitBreaker,
    HealthRegistry,
    ResilienceConfig,
    RetryPolicy,
)
from .services import WorkflowSystem

__version__ = "1.0.0"

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "ConcurrentEngine",
    "ConcurrentWorkflow",
    "GuardKind",
    "HealthRegistry",
    "ImplementationRegistry",
    "LocalEngine",
    "LocalWorkflow",
    "ObjectRef",
    "OutputKind",
    "ReconfigurationError",
    "ResilienceConfig",
    "RetryPolicy",
    "SchemaError",
    "Script",
    "ScriptBuilder",
    "TaskContext",
    "TaskResult",
    "TaskState",
    "ValidationReport",
    "WorkflowError",
    "WorkflowResult",
    "WorkflowStatus",
    "WorkflowSystem",
    "abort",
    "compile_script",
    "format_script",
    "from_input",
    "from_output",
    "from_task",
    "outcome",
    "parse",
    "pending",
    "PendingExternal",
    "ref",
    "repeat",
    "__version__",
]
