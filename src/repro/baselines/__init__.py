"""Related-work baselines (DESIGN.md subsystem S8): a METEOR-style ECA rule
engine and an extended Petri-net engine, each with a compiler from our schema
so experiment E12 can compare the approaches on identical workloads.
"""

from .eca import EcaWorkflow, Rule, RuleEngine, WorkingMemory
from .petrinet import PetriNet, PetriWorkflow, Transition

__all__ = [
    "EcaWorkflow",
    "PetriNet",
    "PetriWorkflow",
    "Rule",
    "RuleEngine",
    "Transition",
    "WorkingMemory",
]
