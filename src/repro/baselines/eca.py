"""Rule-based (event-condition-action) workflow baseline.

The paper's related-work section contrasts its structural scripts with
rule-based workflow languages (METEOR [6]): there, a workflow is a set of
ECA rules over a working memory of events.  This module provides such an
engine **plus a compiler from our schema into rules**, so experiment E12 can
compare, on identical workloads:

* specification size (number of rules vs. script declarations),
* locality of change (how many rules a single dependency edit touches),
* execution cost.

The translation covers the acyclic fragment of the language (no repeat
outcomes): representing iteration in flat one-shot rules requires reifying
rounds in the working memory, which is exactly the awkwardness the paper
holds against rule-based encodings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..core.errors import ExecutionError
from ..core.schema import (
    CompoundTaskDecl,
    GuardKind,
    InputSetBinding,
    OutputKind,
    Script,
    Source,
    TaskDecl,
)
from ..core.values import ObjectRef
from ..engine.context import TaskContext, TaskResult
from ..engine.registry import ImplementationRegistry, ScriptBinding

# Working-memory fact shapes:
#   ("output", producer_path, output_name)               -- an output happened
#   ("input",  task_path, input_set_name)                -- an input set was chosen
#   ("value",  producer_path, via_name, object_name) -> payload (in `values`)

Fact = Tuple[str, ...]


@dataclass
class WorkingMemory:
    facts: Set[Fact] = field(default_factory=set)
    values: Dict[Fact, Any] = field(default_factory=dict)

    def assert_fact(self, fact: Fact, value: Any = None) -> bool:
        fresh = fact not in self.facts
        self.facts.add(fact)
        if value is not None:
            self.values[fact] = value
        return fresh

    def holds(self, fact: Fact) -> bool:
        return fact in self.facts

    def value_of(self, fact: Fact, default: Any = None) -> Any:
        return self.values.get(fact, default)


@dataclass
class Rule:
    """One ECA rule: when `condition` yields bindings, run `action` once."""

    name: str
    condition: Callable[[WorkingMemory], Optional[Dict[str, Any]]]
    action: Callable[[WorkingMemory, Dict[str, Any]], None]


class RuleEngine:
    """Naive forward-chaining fixpoint engine (fire-once per rule)."""

    def __init__(self, rules: List[Rule]) -> None:
        self.rules = list(rules)
        self.memory = WorkingMemory()
        self.firings = 0
        self.evaluations = 0

    def run(self, max_cycles: int = 100_000) -> None:
        fired: Set[str] = set()
        progress = True
        cycles = 0
        while progress:
            cycles += 1
            if cycles > max_cycles:
                raise ExecutionError("rule engine did not reach a fixpoint")
            progress = False
            for rule in self.rules:
                if rule.name in fired:
                    continue
                self.evaluations += 1
                bindings = rule.condition(self.memory)
                if bindings is None:
                    continue
                fired.add(rule.name)
                self.firings += 1
                rule.action(self.memory, bindings)
                progress = True


# ---------------------------------------------------------------------------
# Schema -> rules compiler
# ---------------------------------------------------------------------------


class EcaWorkflow:
    """A workflow compiled to ECA rules, runnable against a registry."""

    def __init__(self, script: Script, root_task: str, registry: ImplementationRegistry) -> None:
        self.script = script
        self.root_task = root_task
        self.registry = registry
        self.rules: List[Rule] = []
        self.tasks_run: List[str] = []
        self._compile()

    # -- public ------------------------------------------------------------------

    @property
    def rule_count(self) -> int:
        return len(self.rules)

    def run(self, inputs: Dict[str, Any], input_set: str = "main") -> Dict[str, Any]:
        engine = RuleEngine(self.rules)
        root = self.script.tasks[self.root_task]
        root_class = self.script.taskclass_of(root)
        spec = root_class.input_set(input_set)
        engine.memory.assert_fact(("input", self.root_task, input_set))
        if spec is not None:
            for decl in spec.objects:
                engine.memory.assert_fact(
                    ("value", self.root_task, input_set, decl.name),
                    inputs.get(decl.name),
                )
        engine.run()
        outcome_name = None
        objects: Dict[str, Any] = {}
        for out in root_class.outputs:
            if engine.memory.holds(("output", self.root_task, out.name)):
                outcome_name = out.name
                for decl in out.objects:
                    objects[decl.name] = engine.memory.value_of(
                        ("value", self.root_task, out.name, decl.name)
                    )
                break
        return {
            "outcome": outcome_name,
            "objects": objects,
            "firings": engine.firings,
            "evaluations": engine.evaluations,
            "rules": self.rule_count,
        }

    # -- compilation -----------------------------------------------------------------

    def _compile(self) -> None:
        root = self.script.tasks[self.root_task]
        self._compile_decl(root, parent_path=None)

    def _path(self, parent_path: Optional[str], name: str) -> str:
        return f"{parent_path}/{name}" if parent_path else name

    def _compile_decl(self, decl, parent_path: Optional[str]) -> None:
        path = self._path(parent_path, decl.name)
        taskclass = self.script.taskclass_of(decl)
        for out in taskclass.outputs:
            if out.kind is OutputKind.REPEAT:
                raise ExecutionError(
                    f"{path}: the ECA baseline does not support repeat outcomes "
                    f"(iteration requires reified rounds in rule memory)"
                )
        if isinstance(decl, CompoundTaskDecl):
            scope = {child.name: self._path(path, child.name) for child in decl.tasks}
            scope[decl.name] = path
            for child in decl.tasks:
                self._compile_decl(child, path)
            for binding in decl.outputs:
                self._compile_compound_output(decl, path, binding, scope)
        else:
            self._compile_simple_task(decl, path, taskclass, parent_path)

    def _source_fact(self, scope: Dict[str, str], source: Source) -> Callable[[WorkingMemory], Optional[Fact]]:
        producer = scope[source.task_name]

        def resolve(memory: WorkingMemory) -> Optional[Fact]:
            if source.guard_kind is GuardKind.OUTPUT:
                if memory.holds(("output", producer, source.guard_name)):
                    return ("value", producer, source.guard_name, source.object_name) if source.object_name else ("output", producer, source.guard_name)
                return None
            if source.guard_kind is GuardKind.INPUT:
                if memory.holds(("input", producer, source.guard_name)):
                    return ("value", producer, source.guard_name, source.object_name) if source.object_name else ("input", producer, source.guard_name)
                return None
            # unguarded: any output fact of the producer carrying the object
            for fact in list(memory.facts):
                if fact[0] == "output" and fact[1] == producer:
                    candidate = ("value", producer, fact[2], source.object_name)
                    if candidate in memory.values:
                        return candidate
            return None

        return resolve

    def _condition_for(
        self, scope: Dict[str, str], binding: InputSetBinding
    ) -> Callable[[WorkingMemory], Optional[Dict[str, Any]]]:
        object_resolvers = [
            (obj.name, [self._source_fact(scope, s) for s in obj.sources])
            for obj in binding.objects
        ]
        notification_resolvers = [
            [self._source_fact(scope, s) for s in notif.sources]
            for notif in binding.notifications
        ]

        def condition(memory: WorkingMemory) -> Optional[Dict[str, Any]]:
            chosen: Dict[str, Any] = {}
            for name, resolvers in object_resolvers:
                for resolve in resolvers:
                    fact = resolve(memory)
                    if fact is not None:
                        chosen[name] = memory.value_of(fact)
                        break
                else:
                    return None
            for resolvers in notification_resolvers:
                if not any(resolve(memory) is not None for resolve in resolvers):
                    return None
            return chosen

        return condition

    def _compile_simple_task(self, decl: TaskDecl, path: str, taskclass, parent_path) -> None:
        scope = self._scope_for(parent_path)
        for binding in decl.input_sets:
            condition = self._condition_for(scope, binding)
            spec = taskclass.input_set(binding.name)

            def action(
                memory: WorkingMemory,
                chosen: Dict[str, Any],
                decl=decl,
                path=path,
                taskclass=taskclass,
                set_name=binding.name,
                spec=spec,
            ) -> None:
                if any(f[0] == "input" and f[1] == path for f in memory.facts):
                    return  # another input set already started this task
                memory.assert_fact(("input", path, set_name))
                for name, value in chosen.items():
                    memory.assert_fact(("value", path, set_name, name), value)
                self._run_task(memory, decl, path, taskclass, set_name, chosen, spec)

            self.rules.append(Rule(f"start:{path}:{binding.name}", condition, action))

    def _run_task(self, memory, decl, path, taskclass, set_name, chosen, spec) -> None:
        self.tasks_run.append(path)
        refs: Dict[str, ObjectRef] = {}
        for name, value in chosen.items():
            class_name = ""
            if spec is not None and spec.object(name) is not None:
                class_name = spec.object(name).class_name
            refs[name] = value if isinstance(value, ObjectRef) else ObjectRef(class_name, value)

        def mark_sink(mark_name: str, objects) -> None:
            memory.assert_fact(("output", path, mark_name))
            for obj_name, ref in objects.items():
                memory.assert_fact(("value", path, mark_name, obj_name), ref.value)

        context = TaskContext(
            task_path=path,
            taskclass=taskclass,
            input_set=set_name,
            inputs=refs,
            properties=decl.implementation.as_dict(),
            mark_sink=mark_sink,
        )
        binding = self.registry.resolve(decl.implementation.code)
        if isinstance(binding, ScriptBinding):
            raise ExecutionError(f"{path}: script bindings unsupported in the ECA baseline")
        result: TaskResult = binding(context)
        memory.assert_fact(("output", path, result.name))
        for obj_name, value in result.objects.items():
            payload = value.value if isinstance(value, ObjectRef) else value
            memory.assert_fact(("value", path, result.name, obj_name), payload)

    def _compile_compound_output(self, decl, path, binding, scope) -> None:
        from ..core.schema import InputObjectBinding

        # Output mappings satisfy exactly like input sets; reuse the machinery.
        pseudo = InputSetBinding(
            name=binding.name,
            objects=tuple(
                InputObjectBinding(obj.name, obj.sources) for obj in binding.objects
            ),
            notifications=binding.notifications,
        )
        condition = self._condition_for(scope, pseudo)

        def action(memory: WorkingMemory, chosen: Dict[str, Any], path=path, name=binding.name) -> None:
            if any(
                f[0] == "output" and f[1] == path and self._is_terminal(path, f[2])
                for f in memory.facts
            ):
                return  # compound already terminated
            memory.assert_fact(("output", path, name))
            for obj_name, value in chosen.items():
                payload = value.value if isinstance(value, ObjectRef) else value
                memory.assert_fact(("value", path, name, obj_name), payload)

        self.rules.append(Rule(f"emit:{path}:{binding.name}", condition, action))

    def _is_terminal(self, path: str, output_name: str) -> bool:
        # find the decl's class by path to know output kinds
        parts = [p for p in path.split("/") if p]
        decl = self.script.tasks[parts[0]]
        for part in parts[1:]:
            decl = decl.task(part)
        taskclass = self.script.taskclass_of(decl)
        spec = taskclass.output(output_name)
        return spec is not None and spec.kind in (OutputKind.OUTCOME, OutputKind.ABORT)

    def _scope_for(self, parent_path: Optional[str]) -> Dict[str, str]:
        if parent_path is None:
            return {self.root_task: self.root_task}
        parts = [p for p in parent_path.split("/") if p]
        decl = self.script.tasks[parts[0]]
        for part in parts[1:]:
            decl = decl.task(part)
        scope = {child.name: f"{parent_path}/{child.name}" for child in decl.tasks}
        scope[decl.name] = parent_path
        return scope
