"""Petri-net workflow baseline.

The second comparator from the paper's related work [9]: workflow engines
built on (extended) Petri nets, where control flow is modelled by tokens.
We implement a coloured net with OR-input groups (plain place/transition
nets explode exponentially under the language's *alternative sources*, which
is itself a data point for E12) and a compiler from our schema.

Net construction:

* one **place** per observable event — ``(producer_path, "output"|"input",
  name)`` — carrying a token whose colour is the event's object payload;
* one **transition** per (task instance, input set): its input is a list of
  OR-groups (one per object binding and per notification binding — any one
  place of the group supplies the token); firing runs the bound
  implementation and deposits a token in the produced output's place;
* one transition per compound output mapping, depositing into the compound's
  output place.

Repeat outcomes are unsupported (tokens for re-execution would need net
transformations at run time), as with the ECA baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..core.errors import ExecutionError
from ..core.schema import (
    CompoundTaskDecl,
    GuardKind,
    InputSetBinding,
    InputObjectBinding,
    OutputKind,
    Script,
    Source,
)
from ..core.values import ObjectRef
from ..engine.context import TaskContext, TaskResult
from ..engine.registry import ImplementationRegistry, ScriptBinding

Place = Tuple[str, str, str]  # (producer_path, "output"|"input", name)


@dataclass
class Transition:
    """OR-group input arcs -> fire `effect` -> output tokens."""

    name: str
    # each group: (consumer object name or None, [(place, source object name or None)])
    groups: List[Tuple[Optional[str], List[Tuple[Place, Optional[str]]]]]
    effect: Callable[["PetriNet", Dict[str, Any]], None]
    fired: bool = False

    def enabled(self, net: "PetriNet") -> Optional[Dict[str, Any]]:
        chosen: Dict[str, Any] = {}
        for consumer_name, arcs in self.groups:
            for place, source_object in arcs:
                if net.marked(place):
                    if consumer_name is not None:
                        token = net.colour(place)
                        value = (
                            token.get(source_object)
                            if isinstance(token, dict) and source_object
                            else token
                        )
                        chosen[consumer_name] = value
                    break
            else:
                return None
        return chosen


class PetriNet:
    """Coloured net with monotone marking (places, once marked, stay marked —
    workflow events are facts, not consumable resources here)."""

    def __init__(self) -> None:
        self.places: Set[Place] = set()
        self.transitions: List[Transition] = []
        self.marking: Dict[Place, Any] = {}
        self.firings = 0

    def add_place(self, place: Place) -> Place:
        self.places.add(place)
        return place

    def add_transition(self, transition: Transition) -> None:
        for _name, arcs in transition.groups:
            for place, _obj in arcs:
                self.add_place(place)
        self.transitions.append(transition)

    def put(self, place: Place, colour: Any = None) -> None:
        self.add_place(place)
        if place not in self.marking:
            self.marking[place] = colour

    def marked(self, place: Place) -> bool:
        return place in self.marking

    def colour(self, place: Place) -> Any:
        return self.marking.get(place)

    def run(self, max_cycles: int = 100_000) -> None:
        progress = True
        cycles = 0
        while progress:
            cycles += 1
            if cycles > max_cycles:
                raise ExecutionError("petri net did not quiesce")
            progress = False
            for transition in self.transitions:
                if transition.fired:
                    continue
                chosen = transition.enabled(self)
                if chosen is None:
                    continue
                transition.fired = True
                self.firings += 1
                transition.effect(self, chosen)
                progress = True


class PetriWorkflow:
    """A workflow compiled to a coloured Petri net."""

    def __init__(self, script: Script, root_task: str, registry: ImplementationRegistry) -> None:
        self.script = script
        self.root_task = root_task
        self.registry = registry
        self.net = PetriNet()
        self.tasks_run: List[str] = []
        self._mutex: Dict[str, bool] = {}  # task started / compound terminated
        self._compile()

    # -- metrics ---------------------------------------------------------------------

    @property
    def place_count(self) -> int:
        return len(self.net.places)

    @property
    def transition_count(self) -> int:
        return len(self.net.transitions)

    # -- running -----------------------------------------------------------------------

    def run(self, inputs: Dict[str, Any], input_set: str = "main") -> Dict[str, Any]:
        root_class = self.script.taskclass_of(self.script.tasks[self.root_task])
        self.net.put((self.root_task, "input", input_set), dict(inputs))
        self.net.run()
        outcome_name = None
        objects: Dict[str, Any] = {}
        for out in root_class.outputs:
            place = (self.root_task, "output", out.name)
            if self.net.marked(place):
                outcome_name = out.name
                token = self.net.colour(place)
                if isinstance(token, dict):
                    objects = dict(token)
                break
        return {
            "outcome": outcome_name,
            "objects": objects,
            "firings": self.net.firings,
            "places": self.place_count,
            "transitions": self.transition_count,
        }

    # -- compilation -----------------------------------------------------------------------

    def _compile(self) -> None:
        self._compile_decl(self.script.tasks[self.root_task], None)

    def _path(self, parent: Optional[str], name: str) -> str:
        return f"{parent}/{name}" if parent else name

    def _scope(self, parent_path: Optional[str], decl) -> Dict[str, str]:
        if isinstance(decl, CompoundTaskDecl):
            path = self._path(parent_path, decl.name)
            scope = {child.name: f"{path}/{child.name}" for child in decl.tasks}
            scope[decl.name] = path
            return scope
        raise AssertionError("scope of a simple task requested")

    def _arcs_for(self, scope: Dict[str, str], source: Source) -> List[Tuple[Place, Optional[str]]]:
        producer = scope[source.task_name]
        if source.guard_kind is GuardKind.OUTPUT:
            return [((producer, "output", source.guard_name), source.object_name)]
        if source.guard_kind is GuardKind.INPUT:
            return [((producer, "input", source.guard_name), source.object_name)]
        # unguarded: one arc per outcome/mark of the producer's class that
        # carries the object
        decl = self._decl_at(producer)
        taskclass = self.script.taskclass_of(decl)
        arcs: List[Tuple[Place, Optional[str]]] = []
        for out in taskclass.outputs:
            if out.kind in (OutputKind.OUTCOME, OutputKind.MARK) and out.object(
                source.object_name
            ):
                arcs.append(((producer, "output", out.name), source.object_name))
        return arcs

    def _decl_at(self, path: str):
        parts = [p for p in path.split("/") if p]
        decl = self.script.tasks[parts[0]]
        for part in parts[1:]:
            decl = decl.task(part)
        return decl

    def _groups_for(
        self, scope: Dict[str, str], binding: InputSetBinding
    ) -> List[Tuple[Optional[str], List[Tuple[Place, Optional[str]]]]]:
        groups: List[Tuple[Optional[str], List[Tuple[Place, Optional[str]]]]] = []
        for obj in binding.objects:
            arcs: List[Tuple[Place, Optional[str]]] = []
            for source in obj.sources:
                arcs.extend(self._arcs_for(scope, source))
            groups.append((obj.name, arcs))
        for notif in binding.notifications:
            arcs = []
            for source in notif.sources:
                arcs.extend(self._arcs_for(scope, source))
            groups.append((None, arcs))
        return groups

    def _compile_decl(self, decl, parent_path: Optional[str]) -> None:
        path = self._path(parent_path, decl.name)
        taskclass = self.script.taskclass_of(decl)
        if any(o.kind is OutputKind.REPEAT for o in taskclass.outputs):
            raise ExecutionError(
                f"{path}: the Petri-net baseline does not support repeat outcomes"
            )
        if isinstance(decl, CompoundTaskDecl):
            scope = self._scope(parent_path, decl) if parent_path else {decl.name: path}
            # compound's own input transitions are represented by its parent;
            # here, wire constituents and output mappings in the inner scope
            inner = {child.name: f"{path}/{child.name}" for child in decl.tasks}
            inner[decl.name] = path
            for child in decl.tasks:
                self._compile_decl(child, path)
            for binding in decl.outputs:
                pseudo = InputSetBinding(
                    name=binding.name,
                    objects=tuple(
                        InputObjectBinding(o.name, o.sources) for o in binding.objects
                    ),
                    notifications=binding.notifications,
                )
                groups = self._groups_for(inner, pseudo)
                spec = taskclass.output(binding.name)

                def emit(
                    net: PetriNet,
                    chosen: Dict[str, Any],
                    path=path,
                    name=binding.name,
                    terminal=spec is not None
                    and spec.kind in (OutputKind.OUTCOME, OutputKind.ABORT),
                ) -> None:
                    if terminal and self._mutex.get(f"done:{path}"):
                        return
                    if terminal:
                        self._mutex[f"done:{path}"] = True
                    net.put((path, "output", name), chosen)

                self.net.add_transition(
                    Transition(f"emit:{path}:{binding.name}", groups, emit)
                )
            if parent_path is not None:
                self._compile_inputs(decl, path, parent_path, starts_task=False)
        else:
            self._compile_inputs(decl, path, parent_path, starts_task=True)

    def _compile_inputs(self, decl, path, parent_path, starts_task: bool) -> None:
        taskclass = self.script.taskclass_of(decl)
        parent_decl = self._decl_at(parent_path) if parent_path else None
        scope = (
            self._scope(
                parent_path.rsplit("/", 1)[0] if "/" in parent_path else None,
                parent_decl,
            )
            if parent_decl is not None
            else {decl.name: path}
        )
        for binding in decl.input_sets:
            groups = self._groups_for(scope, binding)
            spec = taskclass.input_set(binding.name)

            def start(
                net: PetriNet,
                chosen: Dict[str, Any],
                decl=decl,
                path=path,
                taskclass=taskclass,
                set_name=binding.name,
                spec=spec,
                starts_task=starts_task,
            ) -> None:
                if self._mutex.get(f"started:{path}"):
                    return
                self._mutex[f"started:{path}"] = True
                net.put((path, "input", set_name), dict(chosen))
                if starts_task:
                    self._run_task(net, decl, path, taskclass, set_name, chosen, spec)

            self.net.add_transition(
                Transition(f"start:{path}:{binding.name}", groups, start)
            )

    def _run_task(self, net, decl, path, taskclass, set_name, chosen, spec) -> None:
        self.tasks_run.append(path)
        refs: Dict[str, ObjectRef] = {}
        for name, value in chosen.items():
            class_name = ""
            if spec is not None and spec.object(name) is not None:
                class_name = spec.object(name).class_name
            refs[name] = value if isinstance(value, ObjectRef) else ObjectRef(class_name, value)

        def mark_sink(mark_name: str, objects) -> None:
            net.put(
                (path, "output", mark_name),
                {obj_name: ref.value for obj_name, ref in objects.items()},
            )

        context = TaskContext(
            task_path=path,
            taskclass=taskclass,
            input_set=set_name,
            inputs=refs,
            properties=decl.implementation.as_dict(),
            mark_sink=mark_sink,
        )
        binding = self.registry.resolve(decl.implementation.code)
        if isinstance(binding, ScriptBinding):
            raise ExecutionError(f"{path}: script bindings unsupported in the net baseline")
        result: TaskResult = binding(context)
        token = {
            name: value.value if isinstance(value, ObjectRef) else value
            for name, value in result.objects.items()
        }
        net.put((path, "output", result.name), token)
