"""Identifier types for the transactional substrate.

Arjuna used interned UIDs for transactions and persistent objects; we use
small, ordered, human-readable identifiers which make logs and test failures
legible while preserving the properties the protocols need (uniqueness and a
total order for deterministic tie-breaking, e.g. wound-wait style policies).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True, order=True)
class TransactionId:
    """Globally ordered transaction identifier."""

    number: int
    origin: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"txn:{self.origin}:{self.number}" if self.origin else f"txn:{self.number}"


@dataclass(frozen=True, order=True)
class ObjectId:
    """Identifier of a persistent (atomic) object."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"obj:{self.name}"


class IdSource:
    """Monotonic id generator, one per transaction manager."""

    def __init__(self, origin: str = "") -> None:
        self.origin = origin
        self._counter: Iterator[int] = itertools.count(1)

    def next_txn(self) -> TransactionId:
        return TransactionId(next(self._counter), self.origin)
