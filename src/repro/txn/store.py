"""Durable object store.

One :class:`ObjectStore` models one node's stable storage, holding the
committed states of persistent atomic objects plus the write-ahead log that
makes updates recoverable.  The in-memory ``committed`` map is just a cache of
what the durable log says; :meth:`crash` drops unforced log records and
rebuilds the cache from the log — the store's entire crash semantics.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, KeysView, List, Optional

from ..sim.crashpoints import crash_point
from .ids import ObjectId, TransactionId
from .locks import LockManager
from . import wal as wal_mod
from .wal import WriteAheadLog


class NoSuchObject(KeyError):
    """Read of an object that has never been committed."""


class ObjectStore:
    """Stable storage for one node: committed object images + WAL + locks."""

    def __init__(
        self,
        name: str,
        mirror_path: Optional[str] = None,
        group_commit: bool = False,
        group_max: int = 128,
    ) -> None:
        self.name = name
        self.wal = WriteAheadLog(mirror_path, group_commit=group_commit, group_max=group_max)
        self.locks = LockManager()
        self._committed: Dict[str, Any] = {}

    # -- committed-state access -------------------------------------------------

    def read_committed(self, key: str) -> Any:
        try:
            return self._committed[key]
        except KeyError:
            raise NoSuchObject(key) from None

    def get_committed(self, key: str, default: Any = None) -> Any:
        return self._committed.get(key, default)

    def get_committed_many(self, keys: Iterable[str], default: Any = None) -> List[Any]:
        """Batched committed read: one store round-trip for a whole key range
        (an instance journal, a scan) instead of one ``get_committed`` per
        key.  Missing keys yield ``default`` at their position."""
        committed = self._committed
        return [committed.get(key, default) for key in keys]

    def exists(self, key: str) -> bool:
        return key in self._committed

    def keys(self) -> KeysView[str]:
        return self._committed.keys()

    def snapshot(self) -> Dict[str, Any]:
        return dict(self._committed)

    # -- transactional application (called by the transaction manager) ----------

    def log_updates(self, txn: TransactionId, writes: Dict[str, Any]) -> None:
        """Append BEGIN+UPDATE records for ``writes`` (not yet durable)."""
        self.wal.append(wal_mod.BEGIN, txn)
        for key, value in writes.items():
            self.wal.append(wal_mod.UPDATE, txn, ObjectId(key), value)
        crash_point("store.log_updates.post", self)

    def prepare(self, txn: TransactionId) -> None:
        """2PC vote: force a PREPARE record."""
        crash_point("store.prepare.pre", self)
        self.wal.append(wal_mod.PREPARE, txn)
        self.wal.force()
        crash_point("store.prepare.post", self)

    def commit(self, txn: TransactionId, writes: Dict[str, Any]) -> None:
        """Force the COMMIT record, then install the after-images."""
        crash_point("store.commit.pre", self)
        self.wal.append(wal_mod.COMMIT, txn)
        self.wal.force()
        crash_point("store.commit.forced", self)
        self._committed.update(writes)
        crash_point("store.commit.post", self)

    def abort(self, txn: TransactionId) -> None:
        crash_point("store.abort.pre", self)
        self.wal.append(wal_mod.ABORT, txn)
        self.wal.force()

    def sync(self) -> bool:
        """Group-commit barrier: drain the WAL's pending mirror syncs."""
        return self.wal.sync()

    # -- failure model -----------------------------------------------------------

    def crash(self) -> int:
        """Lose volatile state: unforced log records vanish and the committed
        cache is rebuilt from the durable log.  Returns records lost.

        The lock table is volatile too — locks held by transactions that were
        in flight at crash time die with them, so recovery-time transactions
        start against a clean table instead of deadlocking on ghosts.
        """
        lost = self.wal.lose_unforced()
        self._committed = wal_mod.replay(self.wal.durable_records())
        self.locks = LockManager()
        return lost

    def recover(self) -> None:
        """Rebuild the committed cache from the durable log (idempotent)."""
        self._committed = wal_mod.replay(self.wal.durable_records())

    def in_doubt(self) -> Iterable[TransactionId]:
        """Transactions prepared here whose outcome is unknown locally."""
        return wal_mod.in_doubt(self.wal.durable_records())

    def checkpoint(self) -> None:
        """Compact the log around the current committed snapshot."""
        self.wal.checkpoint(self.snapshot())
