"""Transactional substrate: the OTSArjuna analogue (see DESIGN.md §2).

Provides persistent atomic objects, strict-2PL locking, write-ahead logging,
one- and two-phase commit, and crash recovery.  The workflow execution
service builds its "tasks eventually receive their inputs" guarantee on these
primitives, exactly as the paper builds on Arjuna/OTS.
"""

from .atomic import AtomicObject
from .ids import IdSource, ObjectId, TransactionId
from .locks import DeadlockError, LockConflict, LockManager, LockMode
from .manager import (
    RetriesExhausted,
    Transaction,
    TransactionAborted,
    TransactionManager,
    TransactionState,
)
from .recovery import recover_with_coordinator, resolve_in_doubt
from .store import NoSuchObject, ObjectStore
from .wal import LogRecord, WriteAheadLog, in_doubt, replay

__all__ = [
    "AtomicObject",
    "DeadlockError",
    "IdSource",
    "LockConflict",
    "LockManager",
    "LockMode",
    "LogRecord",
    "NoSuchObject",
    "ObjectId",
    "ObjectStore",
    "RetriesExhausted",
    "Transaction",
    "TransactionAborted",
    "TransactionId",
    "TransactionManager",
    "TransactionState",
    "WriteAheadLog",
    "in_doubt",
    "recover_with_coordinator",
    "replay",
    "resolve_in_doubt",
]
