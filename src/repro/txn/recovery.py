"""Crash recovery for stores participating in two-phase commit.

Single-store (one-phase) recovery is fully handled by
:meth:`ObjectStore.recover` — redo committed transactions, presume-abort the
rest.  Stores that hold PREPARE records without a matching decision are *in
doubt* and must ask the coordinator; this module implements that resolution
step.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .ids import ObjectId, TransactionId
from .manager import TransactionManager
from .store import ObjectStore
from . import wal as wal_mod


def resolve_in_doubt(store: ObjectStore, decide: Callable[[TransactionId], bool]) -> Dict[TransactionId, bool]:
    """Resolve every in-doubt transaction in ``store``.

    ``decide(tid)`` returns the coordinator's verdict (True = commit).  For
    each in-doubt transaction the outcome record is appended and, on commit,
    its logged after-images are installed.  Returns the decisions applied.
    """
    decisions: Dict[TransactionId, bool] = {}
    for tid in list(store.in_doubt()):
        committed = bool(decide(tid))
        decisions[tid] = committed
        if committed:
            writes = _logged_writes(store, tid)
            store.commit(tid, writes)
        else:
            store.abort(tid)
    return decisions


def recover_with_coordinator(store: ObjectStore, manager: TransactionManager) -> Dict[TransactionId, bool]:
    """Full recovery of ``store``: replay the durable log, then resolve any
    in-doubt prepared transactions against ``manager``'s decision log."""
    store.recover()
    return resolve_in_doubt(store, manager.decision)


def _logged_writes(store: ObjectStore, tid: TransactionId) -> Dict[str, object]:
    writes: Dict[str, object] = {}
    for record in store.wal.durable_records():
        if record.kind == wal_mod.UPDATE and record.txn == tid:
            writes[record.obj.name] = record.value
    return writes
