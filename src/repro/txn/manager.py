"""Transactions and the transaction manager (OTS analogue).

A :class:`Transaction` buffers reads and writes against one or more
:class:`~repro.txn.store.ObjectStore` instances under strict two-phase
locking.  Commit uses one-phase (single store) or two-phase commit (multiple
stores): every participant forces a PREPARE record, the coordinator forces the
decision in its own log, then participants force COMMIT and install the
after-images.  Presumed abort: an in-doubt participant that finds no decision
aborts.

The execution service wraps every dependency-propagation step in one of these
transactions — this is the mechanism behind the paper's claim that "tasks
eventually receive their inputs and notifications despite a finite number of
intervening processor crashes".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, TypeVar

from ..sim.crashpoints import crash_point
from .ids import IdSource, ObjectId, TransactionId
from .locks import LockConflict, LockMode
from .store import NoSuchObject, ObjectStore
from . import wal as wal_mod

T = TypeVar("T")


class TransactionState(enum.Enum):
    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


class TransactionAborted(RuntimeError):
    """The transaction was aborted (conflict, explicit abort, or crash)."""

    def __init__(self, tid: TransactionId, reason: str = "") -> None:
        super().__init__(f"{tid} aborted: {reason}" if reason else f"{tid} aborted")
        self.tid = tid
        self.reason = reason


class RetriesExhausted(RuntimeError):
    """``TransactionManager.run`` gave up after its retry budget."""


class Transaction:
    """One ACID transaction spanning one or more stores.

    Supports Arjuna-style **nested transactions** (§2: atomic tasks
    "possibly containing nested transactions within"): :meth:`begin_nested`
    opens a subtransaction whose effects are provisional — committing merges
    them into the parent (locks are inherited, not released); aborting
    discards them without disturbing the parent.  Durability only ever
    happens at top-level commit.
    """

    def __init__(
        self,
        manager: "TransactionManager",
        tid: TransactionId,
        parent: Optional["Transaction"] = None,
    ) -> None:
        self.manager = manager
        self.tid = tid
        self.parent = parent
        self.state = TransactionState.ACTIVE
        self._writes: Dict[ObjectStore, Dict[str, Any]] = {}
        self._touched: Set[ObjectStore] = set()
        self._active_child: Optional["Transaction"] = None

    # -- nesting ------------------------------------------------------------------

    @property
    def is_nested(self) -> bool:
        return self.parent is not None

    def begin_nested(self) -> "Transaction":
        """Open a subtransaction.  The parent must not be used until the
        child commits or aborts (single-threaded nesting discipline)."""
        self._require_active()
        child = Transaction(self.manager, self.manager._ids.next_txn(), parent=self)
        self._active_child = child
        return child

    # -- data access ----------------------------------------------------------

    def read(self, store: ObjectStore, key: str, default: Any = ...) -> Any:
        """Read ``key`` with a shared lock; sees this transaction's own
        uncommitted writes (and, when nested, its ancestors')."""
        self._require_active()
        scope: Optional[Transaction] = self
        while scope is not None:
            buffered = scope._writes.get(store, {})
            if key in buffered:
                return buffered[key]
            scope = scope.parent
        self._lock(store, key, LockMode.SHARED)
        if default is not ...:
            return store.get_committed(key, default)
        try:
            return store.read_committed(key)
        except NoSuchObject:
            raise

    def write(self, store: ObjectStore, key: str, value: Any) -> None:
        """Write ``key`` with an exclusive lock (buffered until commit)."""
        self._require_active()
        self._lock(store, key, LockMode.EXCLUSIVE)
        self._writes.setdefault(store, {})[key] = value

    @property
    def top(self) -> "Transaction":
        scope = self
        while scope.parent is not None:
            scope = scope.parent
        return scope

    def _lock(self, store: ObjectStore, key: str, mode: LockMode) -> None:
        # Locks are always taken under the top-level transaction id: a nested
        # transaction may freely touch what its ancestors hold, and strict
        # 2PL keeps everything until top-level commit/abort (conservative
        # Arjuna-style lock inheritance).
        self._touched.add(store)
        try:
            store.locks.acquire(self.top.tid, ObjectId(key), mode, wait=False)
        except LockConflict:
            self.abort(reason=f"lock conflict on {key!r}")
            raise TransactionAborted(self.tid, f"lock conflict on {key!r}") from None

    # -- termination -----------------------------------------------------------

    def commit(self) -> None:
        """Commit: nested transactions merge into their parent; top-level
        transactions use 1PC (single store) or 2PC (multiple stores)."""
        self._require_active()
        if self.is_nested:
            for store, writes in self._writes.items():
                self.parent._writes.setdefault(store, {}).update(writes)
            self.parent._touched |= self._touched
            self.parent._active_child = None
            self.state = TransactionState.COMMITTED
            return
        crash_point("txn.commit.pre", self.manager)
        participants = [s for s in self._writes if self._writes[s]]
        if len(participants) <= 1:
            self._commit_one_phase(participants)
        else:
            self._commit_two_phase(participants)
        self.state = TransactionState.COMMITTED
        crash_point("txn.commit.post", self.manager)
        self._release_locks()
        self.manager.forget(self.tid)

    def _commit_one_phase(self, participants: List[ObjectStore]) -> None:
        for store in participants:
            writes = self._writes[store]
            store.log_updates(self.tid, writes)
            store.commit(self.tid, writes)

    def _commit_two_phase(self, participants: List[ObjectStore]) -> None:
        # Phase 1: every participant logs updates and forces its vote.
        for store in participants:
            store.log_updates(self.tid, self._writes[store])
            store.prepare(self.tid)
        self.state = TransactionState.PREPARED
        crash_point("txn.2pc.prepared", self.manager)
        # Decision point: force the COMMIT decision in the coordinator log.
        self.manager.record_decision(self.tid, committed=True)
        crash_point("txn.2pc.decided", self.manager)
        # Phase 2: participants force COMMIT and install.
        for store in participants:
            store.commit(self.tid, self._writes[store])

    def abort(self, reason: str = "") -> None:
        """Abort and release; buffered writes are discarded."""
        if self.state in (TransactionState.COMMITTED, TransactionState.ABORTED):
            return
        if self._active_child is not None:
            self._active_child.abort(reason="parent aborted")
        if self.is_nested:
            # discard provisional writes; locks stay with the top-level
            # transaction (conservative inheritance) until it finishes, so
            # the parent must know which stores to release at its end
            self.parent._touched |= self._touched
            self.parent._active_child = None
            self.state = TransactionState.ABORTED
            return
        for store in self._touched:
            if self._writes.get(store):
                store.abort(self.tid)
        if self.state is TransactionState.PREPARED:
            self.manager.record_decision(self.tid, committed=False)
        self.state = TransactionState.ABORTED
        self._release_locks()
        self.manager.forget(self.tid)

    def _release_locks(self) -> None:
        for store in self._touched:
            store.locks.release_all(self.tid)

    def _require_active(self) -> None:
        if self.state is not TransactionState.ACTIVE:
            raise TransactionAborted(self.tid, f"not active (state={self.state.value})")
        if self._active_child is not None:
            raise TransactionAborted(
                self.tid, "a nested transaction is open; finish it first"
            )
        if self.parent is not None and self.parent._active_child is not self:
            raise TransactionAborted(self.tid, "nested transaction already closed")

    # -- context manager --------------------------------------------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.commit()
            return False
        if self.state is TransactionState.ACTIVE or self.state is TransactionState.PREPARED:
            self.abort(reason=str(exc))
        return False


class TransactionManager:
    """Creates transactions and keeps the coordinator decision log.

    The decision log is itself durable (it lives in an :class:`ObjectStore`'s
    WAL when one is supplied) so in-doubt participants can resolve after a
    coordinator crash — presumed abort when no decision record exists.
    """

    def __init__(self, name: str = "tm", decision_store: Optional[ObjectStore] = None) -> None:
        self.name = name
        self._ids = IdSource(name)
        self._active: Dict[TransactionId, Transaction] = {}
        self._decision_store = decision_store
        self._decisions: Dict[TransactionId, bool] = {}
        self.stats = {"begun": 0, "committed": 0, "aborted": 0, "retried": 0}

    def begin(self) -> Transaction:
        tid = self._ids.next_txn()
        txn = Transaction(self, tid)
        self._active[tid] = txn
        self.stats["begun"] += 1
        return txn

    def forget(self, tid: TransactionId) -> None:
        txn = self._active.pop(tid, None)
        if txn is not None:
            if txn.state is TransactionState.COMMITTED:
                self.stats["committed"] += 1
            elif txn.state is TransactionState.ABORTED:
                self.stats["aborted"] += 1

    def active(self) -> List[Transaction]:
        return list(self._active.values())

    # -- coordinator decisions -----------------------------------------------------

    def record_decision(self, tid: TransactionId, committed: bool) -> None:
        self._decisions[tid] = committed
        if self._decision_store is not None:
            key = f"_decision:{tid.origin}:{tid.number}"
            self._decision_store.log_updates(tid, {key: committed})
            self._decision_store.commit(tid, {key: committed})

    def decision(self, tid: TransactionId) -> bool:
        """Resolve an in-doubt transaction.  Presumed abort: no record means
        the transaction never reached its decision point and must abort."""
        if tid in self._decisions:
            return self._decisions[tid]
        if self._decision_store is not None:
            key = f"_decision:{tid.origin}:{tid.number}"
            return bool(self._decision_store.get_committed(key, False))
        return False

    # -- convenience: run-with-retries -----------------------------------------------

    def run(self, body: Callable[[Transaction], T], retries: int = 5) -> T:
        """Run ``body`` in a transaction, retrying on conflict aborts.

        This mirrors the paper's system-level "automatic (finite number of)
        retries of tasks that abort due to system level problems".
        """
        attempts = 0
        while True:
            txn = self.begin()
            try:
                result = body(txn)
                txn.commit()
                return result
            except TransactionAborted:
                attempts += 1
                self.stats["retried"] += 1
                if attempts > retries:
                    raise RetriesExhausted(
                        f"transaction retried {retries} times without success"
                    ) from None
            except Exception:
                txn.abort()
                raise
