"""Write-ahead log.

Redo-only logging: a transaction's updates are appended as ``UPDATE`` records
and become durable exactly when its ``COMMIT`` record is forced.  The log
lives in *stable storage* — in the simulation, a plain Python list attached to
a node's stable store that deliberately survives :meth:`Node.crash` — and can
optionally be mirrored to a JSON-lines file on disk for inspection.  The
mirror trails ``_forced_upto``: it receives records only when they are
*forced*, so after any crash — torn writes included — the file holds exactly
the durable prefix.

Two mirror disciplines (see docs/PROTOCOLS.md §11):

* **Per-force** (``group_commit=False``, the default): every ``force()``
  writes its records through a persistent file handle and fsyncs before
  returning — one physical sync per durability point.
* **Group commit** (``group_commit=True``): ``force()`` writes its records
  (buffered) but defers the fsync; adjacent forces coalesce behind a single
  :meth:`sync` issued by the caller's durability barrier, or automatically
  once ``group_max`` forces are pending.  Simulated durability
  (``_forced_upto``) is advanced per force exactly as before, and every
  crash path (:meth:`lose_unforced`, :meth:`torn_force`) syncs the pending
  mirror rows first, so post-mortem the file is still exactly the durable
  prefix.

Record kinds::

    BEGIN    txn
    UPDATE   txn, object, after-image
    PREPARE  txn                     (2PC participant vote)
    COMMIT   txn
    ABORT    txn
    CHECKPOINT snapshot              (compaction point)
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional

from ..core.instrument import IOPATH_STATS
from ..sim.crashpoints import crash_point
from .ids import ObjectId, TransactionId


BEGIN = "BEGIN"
UPDATE = "UPDATE"
PREPARE = "PREPARE"
COMMIT = "COMMIT"
ABORT = "ABORT"
CHECKPOINT = "CHECKPOINT"

_KINDS = {BEGIN, UPDATE, PREPARE, COMMIT, ABORT, CHECKPOINT}


@dataclass(frozen=True)
class LogRecord:
    """One durable log record."""

    lsn: int
    kind: str
    txn: Optional[TransactionId] = None
    obj: Optional[ObjectId] = None
    value: Any = None

    def to_json(self) -> str:
        return json.dumps(
            {
                "lsn": self.lsn,
                "kind": self.kind,
                "txn": [self.txn.number, self.txn.origin] if self.txn else None,
                "obj": self.obj.name if self.obj else None,
                "value": self.value,
            },
            default=repr,
        )


class WriteAheadLog:
    """Append-only redo log.

    ``force()`` is the durability point; appends before a force are volatile
    and are discarded by :meth:`lose_unforced` (which node crash invokes).
    """

    def __init__(
        self,
        mirror_path: Optional[str] = None,
        group_commit: bool = False,
        group_max: int = 128,
    ) -> None:
        self._records: List[LogRecord] = []
        self._forced_upto = 0  # index one past the last durable record
        self._next_lsn = 1
        self._mirror_path = mirror_path
        self._mirror_fh = None  # persistent handle, opened on first mirror write
        self.group_commit = group_commit
        self.group_max = max(1, group_max)
        self._pending_syncs = 0  # forces mirrored but not yet fsynced

    # -- append/force ------------------------------------------------------------

    def append(
        self,
        kind: str,
        txn: Optional[TransactionId] = None,
        obj: Optional[ObjectId] = None,
        value: Any = None,
    ) -> LogRecord:
        if kind not in _KINDS:
            raise ValueError(f"unknown log record kind {kind!r}")
        record = LogRecord(self._next_lsn, kind, txn, obj, value)
        self._next_lsn += 1
        self._records.append(record)
        return record

    def force(self) -> int:
        """Make all appended records durable; returns the durable LSN.

        In group-commit mode the simulated durability point is identical —
        ``_forced_upto`` advances here, and the ``wal.force.pre/post`` crash
        points bracket it exactly as before — only the physical fsync of the
        mirror file is deferred to the next :meth:`sync` barrier (or until
        ``group_max`` forces are pending)."""
        crash_point("wal.force.pre", self)
        IOPATH_STATS.wal_forces += 1
        start = self._forced_upto
        self._forced_upto = len(self._records)
        self._mirror(start, self._forced_upto)
        crash_point("wal.force.post", self)
        return self._records[-1].lsn if self._records else 0

    def torn_force(self) -> int:
        """A force cut short by a crash: every pending record except the last
        becomes durable; the last write is torn and will be discarded by
        :meth:`lose_unforced` (recovery drops a record with a bad checksum).
        Returns how many records were made durable.

        Only meaningful from a crash injector — normal operation never
        half-forces.  The on-disk mirror receives exactly the records that
        became durable, so mirror and simulated stable storage agree.
        """
        target = len(self._records) - 1
        if target <= self._forced_upto:
            self.sync()  # coalesced rows from earlier forces still hit disk
            return 0  # zero or one pending record: nothing becomes durable
        start = self._forced_upto
        self._forced_upto = target
        self._mirror(start, target)
        self.sync()
        return target - start

    def _mirror(self, start: int, end: int) -> None:
        """Append records ``[start, end)`` to the JSON-lines mirror.

        The mirror only ever receives *forced* records — it trails
        ``_forced_upto``, never the volatile tail — so after any crash the
        file is exactly the durable prefix.  Writes go through a persistent
        handle (reopening the file per force cost more than the write
        itself); per-force mode fsyncs immediately, group-commit mode marks
        the rows pending and leaves the fsync to the next :meth:`sync`
        barrier.
        """
        if end <= start:
            return
        if not self._mirror_path:
            # no physical mirror: still account the sync discipline, so the
            # fsyncs-per-step counters are meaningful in pure simulation
            if self.group_commit:
                self._pending_syncs += 1
                if self._pending_syncs >= self.group_max:
                    self.sync()
            else:
                IOPATH_STATS.wal_syncs += 1
            return
        if self._mirror_fh is None:
            self._mirror_fh = open(self._mirror_path, "a", encoding="utf-8")
        fh = self._mirror_fh
        fh.write("".join(record.to_json() + "\n" for record in self._records[start:end]))
        fh.flush()  # visible to same-host readers; durability is the fsync
        IOPATH_STATS.wal_records_mirrored += end - start
        if self.group_commit:
            self._pending_syncs += 1
            if self._pending_syncs >= self.group_max:
                self.sync()
        else:
            os.fsync(fh.fileno())
            IOPATH_STATS.wal_syncs += 1

    def sync(self) -> bool:
        """Group-commit barrier: fsync every mirror row written since the
        last sync, in one physical operation.  Returns True if a sync was
        actually performed (False when nothing was pending).  Callers invoke
        this before any externally observable action that depends on a
        force — that is what bounds the coalescing window."""
        if self._pending_syncs == 0:
            return False
        self._pending_syncs = 0
        if self._mirror_fh is not None:
            os.fsync(self._mirror_fh.fileno())
        IOPATH_STATS.wal_syncs += 1
        return True

    def close(self) -> None:
        """Sync and release the persistent mirror handle."""
        self.sync()
        if self._mirror_fh is not None:
            self._mirror_fh.close()
            self._mirror_fh = None

    def reset(self) -> None:
        """Discard the entire log and restart LSN numbering.

        This is *not* a crash path: it models a standby wiping its local
        stable storage before a full resync from the primary (the shipped
        log is checkpoint-rooted, so the replacement prefix is complete).
        Pending mirror rows are synced first so the on-disk file never
        claims records the reborn log does not have.
        """
        self.sync()
        self._records = []
        self._forced_upto = 0
        self._next_lsn = 1

    def lose_unforced(self) -> int:
        """Simulate a crash: drop records appended since the last force.
        Returns how many records were lost.  Pending group-commit rows are
        synced first: they cover records *before* ``_forced_upto``, so after
        the crash the mirror file is still exactly the durable prefix."""
        self.sync()
        lost = len(self._records) - self._forced_upto
        del self._records[self._forced_upto:]
        return lost

    # -- reading ---------------------------------------------------------------

    def durable_records(self) -> Iterator[LogRecord]:
        """Iterate records that survived (i.e. were forced)."""
        return iter(self._records[: self._forced_upto])

    def all_records(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def durable_length(self) -> int:
        return self._forced_upto

    @property
    def last_durable_lsn(self) -> int:
        """LSN of the newest durable record (0 when nothing is durable yet).

        LSNs are stable across checkpoint truncation, which makes them the
        cursor replication ships by (docs/PROTOCOLS.md §12)."""
        return self._records[self._forced_upto - 1].lsn if self._forced_upto else 0

    @property
    def first_retained_lsn(self) -> int:
        """LSN of the oldest record still in the log (0 when empty).  A
        replication cursor pointing before this has been checkpoint-truncated
        away and the follower needs a full resync."""
        return self._records[0].lsn if self._records else 0

    # -- compaction ---------------------------------------------------------------

    def checkpoint(self, snapshot: Dict[str, Any]) -> None:
        """Write a checkpoint carrying a full committed snapshot, force it and
        truncate everything before it.

        Crash-consistent at every step: before the force the CHECKPOINT
        record is volatile (recovery sees the pre-compaction log); after the
        force but before the truncation the durable log ends in a CHECKPOINT
        whose replay supersedes everything before it (recovery sees the
        post-compaction state); the truncation itself only discards records
        the checkpoint already covers.  There is no half-compacted state.
        """
        crash_point("wal.checkpoint.pre", self)
        record = self.append(CHECKPOINT, value=snapshot)
        self.force()
        self.sync()  # compaction is a durability barrier: drain the window
        crash_point("wal.checkpoint.forced", self)
        index = self._records.index(record)
        self._records = self._records[index:]
        self._forced_upto = len(self._records)
        crash_point("wal.checkpoint.post", self)


def replay(records: Iterable[LogRecord]) -> Dict[str, Any]:
    """Rebuild the committed state from a durable record stream.

    Only updates of transactions whose COMMIT record is present take effect
    (redo-only, presumed abort for the rest) — the standard recovery rule the
    execution service's guarantees rest on.
    """
    snapshot: Dict[str, Any] = {}
    pending: Dict[TransactionId, List[LogRecord]] = {}
    for record in records:
        if record.kind == CHECKPOINT:
            snapshot = dict(record.value or {})
            pending.clear()
        elif record.kind == BEGIN:
            pending[record.txn] = []
        elif record.kind == UPDATE:
            pending.setdefault(record.txn, []).append(record)
        elif record.kind == COMMIT:
            for update in pending.pop(record.txn, []):
                snapshot[update.obj.name] = update.value
        elif record.kind == ABORT:
            pending.pop(record.txn, None)
        # PREPARE leaves the txn pending; outcome is resolved by the
        # coordinator (see repro.txn.recovery).
    return snapshot


def in_doubt(records: Iterable[LogRecord]) -> List[TransactionId]:
    """Transactions that PREPAREd but have no COMMIT/ABORT in the stream."""
    prepared: Dict[TransactionId, bool] = {}
    for record in records:
        if record.kind == PREPARE:
            prepared[record.txn] = True
        elif record.kind in (COMMIT, ABORT) and record.txn in prepared:
            del prepared[record.txn]
        elif record.kind == CHECKPOINT:
            prepared.clear()
    return sorted(prepared)
