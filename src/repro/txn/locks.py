"""Lock manager: strict two-phase locking with deadlock detection.

Two acquisition disciplines are offered:

* ``try_acquire`` — non-blocking; on conflict the caller typically aborts and
  retries (the execution service uses this: its transactions are short).
* ``acquire(..., wait=True)`` — enqueue behind the conflicting holders; a
  waits-for cycle raises :class:`DeadlockError` for the requester closing the
  cycle (its transaction should abort).

Locks are held until :meth:`release_all` at commit/abort — strict 2PL, which
is what gives the paper's atomic objects serialisable updates.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple
from collections import deque

from .ids import ObjectId, TransactionId


class LockMode(enum.Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


class LockConflict(RuntimeError):
    """Non-blocking acquisition failed."""

    def __init__(self, txn: TransactionId, obj: ObjectId, holders: Set[TransactionId]) -> None:
        super().__init__(f"{txn} cannot lock {obj}: held by {sorted(holders)}")
        self.txn = txn
        self.obj = obj
        self.holders = set(holders)


class DeadlockError(RuntimeError):
    """Blocking acquisition would create a waits-for cycle."""

    def __init__(self, txn: TransactionId, cycle: List[TransactionId]) -> None:
        super().__init__(f"deadlock: {txn} joins cycle {cycle}")
        self.txn = txn
        self.cycle = cycle


@dataclass
class _LockEntry:
    holders: Dict[TransactionId, LockMode] = field(default_factory=dict)
    waiters: Deque[Tuple[TransactionId, LockMode]] = field(default_factory=deque)

    def compatible(self, txn: TransactionId, mode: LockMode) -> bool:
        others = {t: m for t, m in self.holders.items() if t != txn}
        if not others:
            return True
        if mode is LockMode.EXCLUSIVE:
            return False
        return all(m is LockMode.SHARED for m in others.values())


class LockManager:
    """Table of object locks, one per store."""

    def __init__(self) -> None:
        self._table: Dict[ObjectId, _LockEntry] = defaultdict(_LockEntry)
        self._held: Dict[TransactionId, Set[ObjectId]] = defaultdict(set)
        # waits-for graph: txn -> transactions it waits on
        self._waits_for: Dict[TransactionId, Set[TransactionId]] = defaultdict(set)

    # -- queries ---------------------------------------------------------------

    def holders(self, obj: ObjectId) -> Dict[TransactionId, LockMode]:
        return dict(self._table[obj].holders)

    def held_by(self, txn: TransactionId) -> Set[ObjectId]:
        return set(self._held.get(txn, ()))

    def mode_of(self, txn: TransactionId, obj: ObjectId) -> Optional[LockMode]:
        return self._table[obj].holders.get(txn)

    # -- acquisition ----------------------------------------------------------

    def try_acquire(self, txn: TransactionId, obj: ObjectId, mode: LockMode) -> bool:
        """Acquire without waiting.  Returns False (and acquires nothing) if a
        conflicting holder exists.  Lock upgrades (shared -> exclusive by the
        sole holder) are supported."""
        entry = self._table[obj]
        current = entry.holders.get(txn)
        if current is LockMode.EXCLUSIVE or current is mode:
            return True
        if not entry.compatible(txn, mode):
            return False
        entry.holders[txn] = mode
        self._held[txn].add(obj)
        return True

    def acquire(self, txn: TransactionId, obj: ObjectId, mode: LockMode, wait: bool = False) -> None:
        """Acquire, raising :class:`LockConflict` (``wait=False``) or
        registering as a waiter and raising :class:`DeadlockError` on a
        waits-for cycle (``wait=True``)."""
        if self.try_acquire(txn, obj, mode):
            return
        entry = self._table[obj]
        holders = {t for t in entry.holders if t != txn}
        if not wait:
            raise LockConflict(txn, obj, holders)
        self._waits_for[txn] |= holders
        cycle = self._find_cycle(txn)
        if cycle:
            self._waits_for.pop(txn, None)
            raise DeadlockError(txn, cycle)
        entry.waiters.append((txn, mode))

    def _find_cycle(self, start: TransactionId) -> Optional[List[TransactionId]]:
        seen: Set[TransactionId] = set()
        path: List[TransactionId] = []

        def visit(txn: TransactionId) -> Optional[List[TransactionId]]:
            if txn in path:
                return path[path.index(txn):]
            if txn in seen:
                return None
            seen.add(txn)
            path.append(txn)
            for other in self._waits_for.get(txn, ()):
                found = visit(other)
                if found:
                    return found
            path.pop()
            return None

        return visit(start)

    # -- lock inheritance (nested transactions) ---------------------------------

    def transfer_all(self, child: TransactionId, parent: TransactionId) -> None:
        """Move every lock held by ``child`` to ``parent`` (Arjuna-style lock
        anti-inheritance: a committing nested transaction's locks are
        retained by its parent rather than released)."""
        for obj in self._held.pop(child, set()):
            entry = self._table[obj]
            mode = entry.holders.pop(child, None)
            if mode is None:
                continue
            current = entry.holders.get(parent)
            if current is not LockMode.EXCLUSIVE:
                entry.holders[parent] = (
                    LockMode.EXCLUSIVE if mode is LockMode.EXCLUSIVE else
                    current or mode
                )
            self._held[parent].add(obj)
        self._waits_for.pop(child, None)
        for waiters in self._waits_for.values():
            waiters.discard(child)

    # -- release --------------------------------------------------------------

    def release_all(self, txn: TransactionId) -> List[Tuple[TransactionId, ObjectId]]:
        """Release every lock held by ``txn`` (strict 2PL release point) and
        grant queued waiters where now possible.  Returns the grants made as
        ``(waiter, object)`` pairs so the caller can resume those
        transactions."""
        grants: List[Tuple[TransactionId, ObjectId]] = []
        for obj in self._held.pop(txn, set()):
            entry = self._table[obj]
            entry.holders.pop(txn, None)
        self._waits_for.pop(txn, None)
        for waiters in self._waits_for.values():
            waiters.discard(txn)
        # drop the released transaction from every waiter queue (it may have
        # been waiting elsewhere when it aborted)
        for entry in self._table.values():
            if any(waiter == txn for waiter, _mode in entry.waiters):
                entry.waiters = deque(
                    (waiter, mode) for waiter, mode in entry.waiters if waiter != txn
                )
        # grant pass: for each object with waiters, admit compatible ones FIFO
        for obj, entry in list(self._table.items()):
            made_grant = True
            while made_grant and entry.waiters:
                waiter, mode = entry.waiters[0]
                if entry.compatible(waiter, mode):
                    entry.waiters.popleft()
                    entry.holders[waiter] = mode
                    self._held[waiter].add(obj)
                    self._waits_for.pop(waiter, None)
                    grants.append((waiter, obj))
                else:
                    made_grant = False
        return grants
