"""Persistent atomic objects.

The paper's execution service "records inter-task dependencies in persistent
shared objects and uses atomic transactions" to update them.  An
:class:`AtomicObject` is that abstraction: a named, typed slot in an
:class:`~repro.txn.store.ObjectStore` that can only be read and written inside
a transaction.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TypeVar

from .manager import Transaction
from .store import NoSuchObject, ObjectStore

T = TypeVar("T")


class AtomicObject:
    """A named persistent slot with transactional access.

    >>> counter = AtomicObject(store, "counter", initial=0)
    >>> with manager.begin() as txn:
    ...     counter.write(txn, counter.read(txn) + 1)
    """

    def __init__(
        self,
        store: ObjectStore,
        name: str,
        initial: Any = None,
        create: bool = True,
    ) -> None:
        self.store = store
        self.name = name
        if create and not store.exists(name):
            # Initial image is installed directly: object creation happens
            # before the object is shared, hence needs no concurrency control,
            # but it must still be durable.
            store.log_updates(_BOOT, {name: initial})
            store.commit(_BOOT, {name: initial})

    def read(self, txn: Transaction) -> Any:
        return txn.read(self.store, self.name)

    def write(self, txn: Transaction, value: Any) -> None:
        txn.write(self.store, self.name, value)

    def modify(self, txn: Transaction, fn: Callable[[Any], T]) -> T:
        """Read-modify-write helper; returns the new value."""
        new_value = fn(self.read(txn))
        self.write(txn, new_value)
        return new_value

    def peek(self) -> Any:
        """Read the last *committed* image without a transaction (monitoring
        only — gives no isolation)."""
        try:
            return self.store.read_committed(self.name)
        except NoSuchObject:
            return None


# Pseudo-transaction id used only for durable object initialisation.
from .ids import TransactionId  # noqa: E402  (import placed near its single use)

_BOOT = TransactionId(0, "boot")
