"""Bounded admission, delay-gradient control, priority shedding (§13).

The execution service consults one :class:`AdmissionController` at every
externally reachable entry point.  The controller owns three pieces of
state and nothing else:

* an **admitted-concurrency window** — how many workflow instances may be
  running at once.  Arrivals beyond the window wait in a
  **bounded admission queue** (FIFO per criticality class is not needed —
  one FIFO, because shedding, not reordering, is the degrade mechanism);
  arrivals beyond the queue are refused with a typed ``Overloaded`` carrying
  a deterministic retry-after hint.
* a CoDel-style **delay-gradient controller**: each control interval it
  looks at the *minimum* queue sojourn observed (the luckiest arrival).  A
  minimum below the target means the queue drains — the window grows
  additively.  A minimum above the target means a standing queue — the
  window shrinks multiplicatively and the **pressure level** rises with the
  excess:

  ========  ==========================================  ======================
  pressure  trigger (min sojourn vs target)             degrade action
  ========  ==========================================  ======================
  0         below target                                none
  1         above target                                suppress hedge duplicates
  2         above ``shed_low_at`` × target              also shed new "low" arrivals
  3         above ``shed_all_at`` × target              shed new arrivals of any class
  ========  ==========================================  ======================

* **counters** mirrored into ``ExecutionService.stats()``.

The controller never touches the journal, the network, or the clock — it is
pure decision logic fed ``now`` by the caller, so every choice it makes is a
deterministic function of the arrival history.  The *service* carries out
the decisions: a "shed" verdict becomes a journaled decisive ``overloaded``
outcome (never a silent drop), a "reject" becomes an ``Overloaded`` raise
before anything is persisted, and promotions dispatch the queued instance's
already-persisted runtime.

What is *never* shed, regardless of pressure: instances that have already
started (their flights, journal entries and 2PC participation are live
state — killing them forfeits work already paid for, the classic metastable
mistake), and anything already journaled.  Shedding applies to work the
service has not yet invested in.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Set, Tuple

from .config import DEFAULT_CRITICALITY, OverloadConfig

# Verdicts returned by AdmissionController.decide().
START = "start"
QUEUE = "queue"
SHED = "shed"
REJECT = "reject"


class AdmissionController:
    """Admission decisions for one execution service.

    ``rlog`` is the service's :class:`~repro.resilience.ResilienceLog`; every
    queue/promote/shed/reject/window decision is recorded there so the trace
    shows *why* an instance waited or died next to why its tasks went where
    they went.
    """

    def __init__(self, config: OverloadConfig, rlog: Optional[Any] = None) -> None:
        self.config = config
        self.rlog = rlog
        self.window: int = config.initial_window
        self.pressure: int = 0
        # iid -> (criticality, enqueue time); dict preserves FIFO order.
        self.queue: Dict[str, Tuple[str, float]] = {}
        self.in_flight: Set[str] = set()
        self.counts: "Counter[str]" = Counter()
        self.last_min_sojourn: float = 0.0
        self.next_control_at: float = config.control_interval
        self._observations: List[float] = []

    # -- admission ---------------------------------------------------------------

    def decide(self, criticality: str, now: float) -> str:
        """Verdict for a new arrival: start | queue | shed | reject."""
        if not self.config.enabled:
            return START
        if not self.queue and len(self.in_flight) < self.window:
            return START
        if self.pressure >= 3:
            return SHED
        if self.pressure >= 2 and criticality == "low":
            return SHED
        if len(self.queue) >= self.config.queue_capacity:
            return REJECT
        return QUEUE

    def enqueue(self, iid: str, criticality: str, now: float) -> None:
        self.queue[iid] = (criticality, now)
        self.counts["queued"] += 1
        if self.rlog is not None:
            self.rlog.record(
                now, "queue", instance=iid,
                detail=f"{criticality}, depth={len(self.queue)}/{self.config.queue_capacity}",
            )

    def on_start(self, iid: str, now: float) -> None:
        """An instance was admitted straight into the window."""
        self.in_flight.add(iid)
        self.counts["admitted"] += 1

    def on_shed(self, iid: str, criticality: str, now: float, reason: str) -> None:
        self.counts[f"shed_{criticality}"] += 1
        if self.rlog is not None:
            self.rlog.record(now, "shed", instance=iid, detail=f"{criticality}: {reason}")

    def on_reject(self, now: float, retry_after: float) -> None:
        self.counts["rejected"] += 1
        if self.rlog is not None:
            self.rlog.record(
                now, "reject",
                detail=f"queue full ({len(self.queue)}), retry_after={retry_after:.1f}",
            )

    def release(self, iid: str, now: float) -> None:
        """An admitted instance reached a terminal status; free its slot."""
        self.in_flight.discard(iid)

    def forget(self, iid: str) -> None:
        """Drop an instance from the queue without shedding it (reconfig paths)."""
        self.queue.pop(iid, None)

    # -- promotion ---------------------------------------------------------------

    def promote_ready(self, now: float) -> List[Tuple[str, str, float]]:
        """Pop queue heads into freed window slots.

        Returns ``(iid, criticality, sojourn)`` triples for the service to
        dispatch.  Each promotion's sojourn is an observation for the
        controller — the queue's delay signal *is* the promotions.
        Promotions continue at any pressure level: draining the backlog is
        how pressure comes back down.
        """
        promoted: List[Tuple[str, str, float]] = []
        while self.queue and len(self.in_flight) < self.window:
            iid, (criticality, entered) = next(iter(self.queue.items()))
            del self.queue[iid]
            sojourn = max(now - entered, 0.0)
            self._observations.append(sojourn)
            self.in_flight.add(iid)
            self.counts["admitted"] += 1
            self.counts["promoted"] += 1
            promoted.append((iid, criticality, sojourn))
            if self.rlog is not None:
                self.rlog.record(
                    now, "promote", instance=iid,
                    detail=f"{criticality}, waited {sojourn:.1f}",
                )
        return promoted

    # -- the delay-gradient controller -------------------------------------------

    def control(self, now: float) -> None:
        """One controller tick (the service calls this from its sweeper)."""
        if not self.config.enabled or now < self.next_control_at:
            return
        self.next_control_at = now + self.config.control_interval
        cfg = self.config
        # Head age counts as an observation: a queue that never promotes
        # anything would otherwise produce no delay signal at all.
        if self.queue:
            _, entered = next(iter(self.queue.values()))
            self._observations.append(max(now - entered, 0.0))
        if not self._observations:
            # Idle interval: relax toward no pressure, regrow the window.
            self._set_pressure(0, now, 0.0)
            self._resize(min(self.window + 1, cfg.max_window), now, "idle")
            self.last_min_sojourn = 0.0
            return
        min_sojourn = min(self._observations)
        self._observations = []
        self.last_min_sojourn = min_sojourn
        if min_sojourn <= cfg.sojourn_target:
            self._set_pressure(0, now, min_sojourn)
            self._resize(min(self.window + 1, cfg.max_window), now, "below target")
            return
        if min_sojourn > cfg.shed_all_at * cfg.sojourn_target:
            level = 3
        elif min_sojourn > cfg.shed_low_at * cfg.sojourn_target:
            level = 2
        else:
            level = 1
        self._set_pressure(level, now, min_sojourn)
        shrunk = max(cfg.min_window, int(self.window * cfg.window_decrease))
        self._resize(shrunk, now, f"min sojourn {min_sojourn:.1f} > target")

    def _set_pressure(self, level: int, now: float, min_sojourn: float) -> None:
        if level == self.pressure:
            return
        previous, self.pressure = self.pressure, level
        if self.rlog is not None:
            self.rlog.record(
                now, "window",
                detail=f"pressure {previous}->{level} (min sojourn {min_sojourn:.1f})",
            )

    def _resize(self, new_window: int, now: float, why: str) -> None:
        if new_window == self.window:
            return
        previous, self.window = self.window, new_window
        self.counts["window_changes"] += 1
        if self.rlog is not None:
            self.rlog.record(now, "window", detail=f"{previous}->{new_window}: {why}")

    # -- degrade decisions beyond admission ---------------------------------------

    def allow_hedge(self) -> bool:
        """Hedged duplicates are the first thing to go under pressure."""
        return not self.config.enabled or self.pressure == 0

    def evict_low(self, now: float) -> List[Tuple[str, str]]:
        """Queued low-criticality instances to shed once pressure reaches 2.

        They would have been shed on arrival at this pressure; keeping them
        queued only lengthens everyone else's sojourn.  Returns ``(iid,
        criticality)`` pairs — the *service* journals their decisive
        outcomes; nothing disappears here.
        """
        if not self.config.enabled or self.pressure < 2:
            return []
        victims = [
            (iid, crit) for iid, (crit, _entered) in self.queue.items() if crit == "low"
        ]
        for iid, _crit in victims:
            del self.queue[iid]
        return victims

    # -- hints and recovery --------------------------------------------------------

    def retry_after(self, now: float) -> float:
        """Deterministic backpressure hint for a refused client: scales with
        queue depth and pressure, so the hint *is* the congestion signal."""
        cfg = self.config
        fill = len(self.queue) / cfg.queue_capacity if cfg.queue_capacity else 1.0
        return cfg.retry_after_base * (1.0 + fill + self.pressure)

    def rebuild(self, iids: List[str], now: float) -> None:
        """Post-recovery reset: every rebuilt non-terminal instance is
        considered admitted (its journal is durable state the service must
        finish), the volatile queue is gone, and the controller restarts
        from its configured window with no pressure — the crash destroyed
        the backlog the pressure was measuring."""
        self.queue.clear()
        self.in_flight = set(iids)
        self.window = max(self.config.initial_window, len(iids))
        self.pressure = 0
        self._observations = []
        self.last_min_sojourn = 0.0
        self.next_control_at = now + self.config.control_interval

    # -- reporting -----------------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        counts = self.counts
        return {
            "enabled": self.config.enabled,
            "window": self.window,
            "pressure": self.pressure,
            "queue_depth": len(self.queue),
            "in_flight": len(self.in_flight),
            "last_min_sojourn": self.last_min_sojourn,
            "admitted": counts["admitted"],
            "queued": counts["queued"],
            "promoted": counts["promoted"],
            "rejected": counts["rejected"],
            "shed_low": counts["shed_low"],
            "shed_normal": counts["shed_normal"],
            "shed_high": counts["shed_high"],
            "window_changes": counts["window_changes"],
        }
