"""Overload-control knobs (docs/PROTOCOLS.md §13).

One frozen bundle, mirroring :class:`~repro.resilience.ResilienceConfig`:
the execution service takes an :class:`OverloadConfig` and wires it into an
:class:`~repro.overload.admission.AdmissionController`.  Defaults are
deliberately generous (window 256, queue 256) so a system that never sees
more than a few hundred concurrent instances behaves byte-for-byte as if
the layer did not exist; benchmarks and load tests pass tighter bounds.
``OverloadConfig.disabled()`` removes the layer entirely (the shedding
ablation of the overload benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass

# The fixed criticality vocabulary, in degrade order: under pressure the
# service sheds hedged duplicates first, then new "low" admissions, then new
# admissions of any class.  Scripts declare it as an implementation property
# on the root task ("criticality" is "low"); anything absent or unknown is
# "normal".
CRITICALITY_CLASSES = ("low", "normal", "high")
DEFAULT_CRITICALITY = "normal"


def criticality_of(script, root_task: str) -> str:
    """Criticality class declared by a script's root task (or the default)."""
    decl = script.tasks.get(root_task)
    if decl is None:
        return DEFAULT_CRITICALITY
    raw = decl.implementation.get("criticality")
    return raw if raw in CRITICALITY_CLASSES else DEFAULT_CRITICALITY


@dataclass(frozen=True)
class OverloadConfig:
    """Knobs of the bounded-admission / adaptive-control / shedding layer.

    ``sojourn_target`` is the CoDel-style target: as long as the *minimum*
    admission-queue sojourn observed over a control interval stays below it,
    the service is running at or below the knee of its latency curve and the
    concurrency window may grow.  A minimum above the target means even the
    luckiest arrival waited too long — a standing queue — so the window
    shrinks multiplicatively and, as the excess grows past ``shed_low_at`` /
    ``shed_all_at`` multiples of the target, the shed policy escalates.
    """

    enabled: bool = True
    queue_capacity: int = 256        # bounded admission queue; full -> Overloaded
    initial_window: int = 256        # admitted-concurrency window (instances)
    min_window: int = 8
    max_window: int = 1024
    window_decrease: float = 0.8     # multiplicative shrink under standing delay
    sojourn_target: float = 30.0     # CoDel target for queue sojourn (virtual s)
    control_interval: float = 10.0   # delay-gradient controller tick period
    shed_low_at: float = 2.0         # sojourn multiple: shed new low-criticality
    shed_all_at: float = 4.0         # sojourn multiple: shed new any-class
    retry_after_base: float = 10.0   # scale of the deterministic retry hint

    def __post_init__(self) -> None:
        if self.queue_capacity < 0:
            raise ValueError("queue_capacity must be >= 0")
        if not 0 < self.min_window <= self.initial_window <= self.max_window:
            raise ValueError("need 0 < min_window <= initial_window <= max_window")
        if not 0.0 < self.window_decrease < 1.0:
            raise ValueError("window_decrease must be in (0, 1)")
        if self.sojourn_target <= 0 or self.control_interval <= 0:
            raise ValueError("sojourn_target and control_interval must be positive")
        if not 1.0 <= self.shed_low_at <= self.shed_all_at:
            raise ValueError("need 1 <= shed_low_at <= shed_all_at")

    @classmethod
    def disabled(cls) -> "OverloadConfig":
        """No admission queue, no controller, no shedding — every instance
        starts immediately, exactly the pre-§13 behaviour."""
        return cls(enabled=False)

    @classmethod
    def for_timeouts(
        cls, dispatch_timeout: float, sweep_interval: float, **overrides
    ) -> "OverloadConfig":
        """Derive targets from the dispatch timings, like ResilienceConfig:
        queue sojourn is measured against the same clock the dispatcher's
        patience is."""
        params = dict(
            sojourn_target=max(dispatch_timeout, 1.0),
            control_interval=max(sweep_interval, 1.0),
        )
        params.update(overrides)
        return cls(**params)
