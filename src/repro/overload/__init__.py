"""Overload robustness: bounded admission, adaptive control, priority
shedding (docs/PROTOCOLS.md §13).

The paper's composition language assumes the execution service can always
accept one more script instantiation; this package is what makes that
assumption safe to rely on.  Arrivals beyond the admitted-concurrency
window wait in a bounded queue, arrivals beyond the queue are refused with
a typed ``Overloaded`` the client backs off from cooperatively, and when a
CoDel-style delay-gradient controller detects a standing queue the service
degrades in a fixed order — hedged duplicates first, then new
low-criticality admissions, then new admissions of any class — with every
shed instance receiving a journaled decisive ``overloaded`` outcome.
Nothing is ever silently dropped, and nothing already started is ever shed.
"""

from .admission import QUEUE, REJECT, SHED, START, AdmissionController
from .config import (
    CRITICALITY_CLASSES,
    DEFAULT_CRITICALITY,
    OverloadConfig,
    criticality_of,
)

__all__ = [
    "AdmissionController",
    "CRITICALITY_CLASSES",
    "DEFAULT_CRITICALITY",
    "OverloadConfig",
    "QUEUE",
    "REJECT",
    "SHED",
    "START",
    "criticality_of",
]
