"""Command-line interface for the workflow language tools.

Mirrors the repository-service operations plus the graphical export::

    python -m repro.cli validate  script.wf         # parse + semantic check
    python -m repro.cli format    script.wf         # canonical pretty-print
    python -m repro.cli inspect   script.wf         # structural summary
    python -m repro.cli lint      script.wf ...     # static analysis report
    python -m repro.cli analyze   script.wf [task]  # static vs dynamic reachability
    python -m repro.cli dot       script.wf [task]  # Graphviz export
    python -m repro.cli demo      order|trip|service-impact
    python -m repro.cli load      --arrival poisson|burst --rate R --seed N

``lint`` accepts ``.wf`` script files *and* ``.py`` files with embedded
``SCRIPT`` constants (the examples/ and workload layout), and renders the
unified static-analysis report as text, JSON, or SARIF 2.1.0.

Exit codes (``lint`` and ``analyze``):

* ``0`` — clean, or warning-severity findings only;
* ``1`` — at least one error-severity finding (with ``lint --strict``,
  warnings also fail), an unreachable outcome, or a static/dynamic
  disagreement;
* ``2`` — a script could not even be parsed.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .core.errors import ParseError, ValidationReport
from .core.graph import structure_summary
from .core.schema import CompoundTaskDecl
from .engine import ConcurrentEngine, LocalEngine
from .engine.trace import render_summary, render_trace
from .lang import compile_script, format_script, parse
from .lang.dot import to_dot


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()


def cmd_validate(args: argparse.Namespace) -> int:
    try:
        script = compile_script(_read(args.script))
    except (ParseError, ValidationReport) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(
        f"OK: {len(script.classes)} classes, {len(script.taskclasses)} task "
        f"classes, {len(script.tasks)} top-level tasks, "
        f"{len(script.templates)} templates"
    )
    return 0


def cmd_format(args: argparse.Namespace) -> int:
    script = parse(_read(args.script))
    text = format_script(script)
    if args.in_place:
        with open(args.script, "w", encoding="utf-8") as fh:
            fh.write(text)
    else:
        print(text, end="")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    script = compile_script(_read(args.script))
    print(f"classes     : {', '.join(sorted(script.classes)) or '-'}")
    print(f"task classes: {', '.join(sorted(script.taskclasses)) or '-'}")
    for name, decl in script.tasks.items():
        if isinstance(decl, CompoundTaskDecl):
            summary = structure_summary(decl)
            print(
                f"compound {name}: {summary['tasks']} constituents, "
                f"{summary['data_edges']} dataflow + "
                f"{summary['notification_edges']} notification arcs, "
                f"{summary['outputs']} outputs"
            )
        else:
            print(f"task {name}: taskclass {decl.taskclass_name}")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    from .engine.plan import compile_plan

    try:
        script = compile_script(_read(args.script))
    except (ParseError, ValidationReport) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    try:
        plan = compile_plan(script, root_task=args.task, analyze=not args.no_liveness)
    except KeyError as exc:
        print(f"ERROR: {exc.args[0]}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(plan.as_dict(), indent=2, sort_keys=True))
    else:
        print(plan.render())
    return 0


def _sanitize_check(script, root_task, report, analysis) -> int:
    """Run the dynamic sanitizer over the explorer's witness assignments and
    gate on the static-superset guarantee (0 = every dynamic finding is
    statically predicted, 1 = analyzer bug)."""
    from .analysis import sanitized_exploration

    sanitizer = sanitized_exploration(script, root_task, analysis=analysis)
    print()
    print(f"sanitizer: {len(sanitizer.findings)} dynamic finding(s)")
    for line in sanitizer.render():
        print(f"  {line}")
    uncovered = sanitizer.check_coverage(report)
    for dyn in uncovered:
        print(
            "ANALYZER BUG: dynamic finding has no static counterpart — "
            f"please report this: {dyn.render()}"
        )
    if not uncovered:
        print("every dynamic finding is statically predicted (dynamic <= static)")
    return 1 if uncovered else 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import analyze_script

    script = compile_script(_read(args.script))
    report = analyze_script(script, root_task=args.task, source_name=args.script)
    if args.static:
        print(report.render_text())
        code = 0 if report.ok else 1
        if args.sanitize:
            code = max(code, _sanitize_check(script, args.task, report, None))
        return code

    # side-by-side: the static may-analysis against the dynamic explorer,
    # which *executes* the workflow under every implementation choice.
    from .core.analysis import analyze_outcomes

    analysis = analyze_outcomes(script, args.task, max_cases=args.max_cases)
    static_reachable = set(report.liveness.reachable_outcomes) if report.liveness else set()
    static_unreachable = set(report.liveness.unreachable_outcomes) if report.liveness else set()
    dynamic_reachable = set(analysis.reachable)
    dynamic_unreachable = set(analysis.unreachable)
    print(f"{'outcome':<24} {'static':<12} dynamic")
    for name in sorted(static_reachable | static_unreachable | dynamic_reachable | dynamic_unreachable):
        s = "reachable" if name in static_reachable else "unreachable"
        d = "reachable" if name in dynamic_reachable else "unreachable"
        print(f"{name:<24} {s:<12} {d}")
    print()
    print(report.render_text())
    print()
    print(analysis.summary())
    disagreement = False
    for name in sorted(static_unreachable & dynamic_reachable):
        # the dynamic explorer produced a real witness for an outcome the
        # may-analysis calls impossible: the static analyser is unsound here.
        disagreement = True
        print(
            f"ANALYZER BUG: outcome {name!r} is statically unreachable but a "
            f"dynamic execution reached it — please report this."
        )
    for name in sorted(static_reachable & dynamic_unreachable):
        disagreement = True
        print(
            f"DISAGREEMENT: outcome {name!r} is statically reachable but no "
            f"dynamic execution reached it (static over-approximation or an "
            f"exploration bound; treat as a possible analyzer bug)."
        )
    if not disagreement:
        print("static and dynamic reachability agree")
    code = 1 if disagreement or analysis.unreachable or not report.ok else 0
    if args.sanitize:
        code = max(code, _sanitize_check(script, args.task, report, analysis))
    return code


def cmd_lint(args: argparse.Namespace) -> int:
    import json

    from .analysis import analyze_script, load_scripts, to_sarif

    sources = []
    artifacts = {}
    for path in args.scripts:
        for name, text in load_scripts([path]):
            sources.append((name, text))
            artifacts[name] = path
    reports = []
    for name, text in sources:
        try:
            script = parse(text)
        except ParseError as exc:
            print(f"{name}: PARSE ERROR: {exc}", file=sys.stderr)
            return 2
        reports.append(analyze_script(script, source_name=name))
    if args.format == "sarif":
        rendered = json.dumps(to_sarif(reports, artifacts=artifacts), indent=2)
    elif args.format == "json":
        rendered = json.dumps([r.as_dict() for r in reports], indent=2)
    else:
        rendered = "\n".join(r.render_text() for r in reports)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
    else:
        print(rendered)
    failed = any(not r.ok for r in reports) or (
        args.strict and any(r.findings for r in reports)
    )
    return 1 if failed else 0


def cmd_sanitize(args: argparse.Namespace) -> int:
    """Run a paper workload with the runtime sanitizer attached (real
    implementations, thread-pooled engine, optionally a nemesis schedule on
    the simulated distributed system) and verify every dynamic finding is
    predicted by a static one."""
    from .analysis import Sanitizer, analyze_script, to_sarif
    from .workloads import paper_order, paper_service_impact, paper_trip

    demos = {
        "order": (paper_order, {"order": "order-1"}),
        "trip": (paper_trip, {"user": "demo-user"}),
        "service-impact": (paper_service_impact, {"alarmsSource": "alarm-feed"}),
    }
    module, inputs = demos[args.name]
    script = module.build()
    report = analyze_script(script, source_name=args.name)
    sanitizer = Sanitizer()
    engine = ConcurrentEngine(
        module.default_registry(), parallelism=args.parallelism, sanitizer=sanitizer
    )
    for _ in range(args.runs):
        engine.run(script, module.ROOT_TASK, inputs=inputs)
    if args.nemesis:
        _sanitize_under_nemesis(args, sanitizer, script)
    print(
        f"{args.name}: {len(sanitizer.findings)} dynamic finding(s) over "
        f"{args.runs} sanitized concurrent run(s)"
        + (" + 1 nemesis schedule" if args.nemesis else "")
    )
    for line in sanitizer.render():
        print(f"  {line}")
    uncovered = sanitizer.check_coverage(report)
    if args.output:
        log = to_sarif(report)
        # the SARIF log carries the static findings; the dynamic run and
        # its coverage verdict ride along in the run's property bag
        log["runs"][0]["properties"] = {
            "sanitizer": {
                "workload": args.name,
                "runs": args.runs,
                "nemesis": bool(args.nemesis),
                "dynamicFindings": [f.render() for f in sanitizer.findings],
                "uncovered": [f.render() for f in uncovered],
            }
        }
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(log, fh, indent=2)
            fh.write("\n")
    for dyn in uncovered:
        print(
            "ANALYZER BUG: dynamic finding has no static counterpart — "
            f"please report this: {dyn.render()}"
        )
    if not uncovered:
        print("every dynamic finding is statically predicted (dynamic <= static)")
    return 1 if uncovered else 0


def _sanitize_under_nemesis(args, sanitizer, script) -> None:
    """One deterministic nemesis run: crash a worker right after it executed
    a task but before the reply lands, forcing the at-least-once redispatch
    to run the task again — then scan the worker ledgers for duplicates."""
    from .sim.harness import WORKLOADS, SimHarness
    from .sim.nemesis import CrashAtPoint, NemesisSchedule

    if args.name not in WORKLOADS:
        print(f"nemesis: workload {args.name!r} not simulated; skipping")
        return
    schedule = NemesisSchedule(
        faults=[CrashAtPoint("worker.execute.post", at_hit=1)],
        name="sanitize-duplicate-effects",
    )
    harness = SimHarness(
        schedule=schedule, workload=args.name, seed=args.seed, workers=2
    )
    sim_report = harness.run()
    sanitizer.scan_workers(harness._system.workers, script)
    print(f"nemesis: {sim_report.summary()}")


def cmd_dot(args: argparse.Namespace) -> int:
    script = compile_script(_read(args.script))
    print(to_dot(script, args.task), end="")
    return 0


def cmd_load(args: argparse.Namespace) -> int:
    """Sustained-traffic generator against the simulated system: a seeded
    Poisson/burst arrival schedule with cohorts and hot-key skew, reported
    as the SLO view (docs/PROTOCOLS.md §13)."""
    from .overload import OverloadConfig
    from .services.system import WorkflowSystem
    from .workloads import TrafficSpec, run_traffic, traffic_registry

    spec = TrafficSpec(
        arrival=args.arrival,
        rate=args.rate,
        duration=args.duration,
        cohorts=args.cohorts,
        skew=args.skew,
        seed=args.seed,
        drain=args.drain,
        slo=args.slo,
    )
    if args.no_overload:
        overload = OverloadConfig.disabled()
    else:
        overload = OverloadConfig(
            queue_capacity=args.queue_capacity,
            initial_window=args.window,
            min_window=max(1, args.window // 4),
        )
    system = WorkflowSystem(
        workers=args.workers,
        registry=traffic_registry(),
        seed=args.seed,
        overload=overload,
        worker_service_time=args.service_time,
        worker_lanes=args.lanes,
    )
    slo_report = run_traffic(system, spec)
    if args.json:
        print(json.dumps(slo_report.to_plain(), indent=2, sort_keys=True))
    else:
        print(slo_report.render())
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    from .workloads import paper_order, paper_service_impact, paper_trip

    if args.load:
        return _demo_load(args)
    demos = {
        "order": (paper_order, {"order": "order-1"}),
        "trip": (paper_trip, {"user": "demo-user"}),
        "service-impact": (paper_service_impact, {"alarmsSource": "alarm-feed"}),
    }
    module, inputs = demos[args.name]
    script = module.build()
    registry = module.default_registry()
    if args.distributed:
        return _demo_distributed(args, module, inputs, registry)
    if args.parallelism > 1:
        engine = ConcurrentEngine(registry, parallelism=args.parallelism)
    else:
        engine = LocalEngine(registry)
    result = engine.run(script, inputs=inputs)
    print(f"outcome: {result.outcome}\n")
    print(render_trace(result.log))
    print()
    print(render_summary(result.log))
    return 0 if result.completed else 1


def _demo_load(args) -> int:
    """Quick overload smoke for ``demo --load``: a short sustained burst
    against a capacity-limited system with a tight admission config, so the
    whole §13 pipeline — queueing, controller, shedding, retry-after — runs
    in a couple of wall seconds."""
    from .overload import OverloadConfig
    from .services.system import WorkflowSystem
    from .workloads import TrafficSpec, run_traffic, traffic_registry

    spec = TrafficSpec(
        rate=1.0, duration=120.0, drain=300.0, seed=args.seed, slo=90.0
    )
    system = WorkflowSystem(
        workers=args.workers,
        registry=traffic_registry(),
        seed=args.seed,
        overload=OverloadConfig(
            queue_capacity=8, initial_window=8, min_window=2
        ),
        worker_service_time=1.0,
    )
    slo_report = run_traffic(system, spec)
    print(slo_report.render())
    healthy = (
        slo_report.offered > 0
        and slo_report.unfinished == 0
        and slo_report.lost == 0
        and slo_report.completed > 0
    )
    return 0 if healthy else 1


def _demo_distributed(args, module, inputs, registry) -> int:
    """Run a demo on the full simulated distributed system, optionally under
    chaos, and show the workflow trace alongside the dispatcher's resilience
    decisions (redispatches, hedges, breaker trips)."""
    from .net.failures import RandomCrasher
    from .resilience import ResilienceConfig
    from .services.system import WorkflowSystem

    if args.no_resilience:
        resilience = ResilienceConfig.disabled()
    else:
        resilience = ResilienceConfig.for_timeouts(
            args.dispatch_timeout,
            args.sweep_interval,
            seed=args.seed,
            hedging=args.hedge_delay != 0.0,
            max_redispatches=args.max_redispatches,
        )
        if args.hedge_delay is not None and args.hedge_delay > 0.0:
            import dataclasses

            resilience = dataclasses.replace(resilience, hedge_delay=args.hedge_delay)
    system = WorkflowSystem(
        workers=args.workers,
        loss_rate=args.loss_rate,
        seed=args.seed,
        dispatch_timeout=args.dispatch_timeout,
        sweep_interval=args.sweep_interval,
        registry=registry,
        resilience=resilience,
        replicas=args.replicas,
    )
    crasher = None
    if args.chaos_interval > 0.0:
        crash_targets = list(system.worker_nodes)
        crasher = RandomCrasher(
            system.clock,
            crash_targets,
            interval=args.chaos_interval,
            downtime=args.chaos_downtime,
            seed=args.seed,
        ).start()
    system.deploy(args.name, module.SCRIPT_TEXT)
    iid = system.instantiate(args.name, module.ROOT_TASK, inputs)
    result = system.run_until_terminal(iid, max_time=50_000.0)
    if crasher is not None:
        crasher.stop()
    print(f"outcome: {result.get('outcome')}  (status: {result['status']})\n")
    service = system.primary_execution() or system.execution
    print(service.trace(iid))
    print()
    if args.replicas > 0:
        for replica in system.execution_replicas:
            status = replica.repl_status()
            print(
                f"{status['name']}: role={status['role']} "
                f"epoch={status['epoch']} isr={status['isr']} "
                f"promotions={status['stats']['promotions']} "
                f"resyncs={status['stats']['resyncs']}"
            )
        print()
    report = service.resilience_report()
    stats = report["stats"]
    print(
        f"dispatches={stats['dispatches']} redispatches={stats['redispatches']} "
        f"hedges={stats['hedges']} failovers={stats['failovers']} "
        f"breaker-trips={stats['breaker_trips']} abandoned={stats['abandoned']} "
        f"recoveries={stats['recoveries']}"
    )
    if crasher is not None:
        print(f"chaos: {len(crasher.injected)} worker crashes injected")
    return 0 if result["status"] == "completed" else 1


def cmd_chaos_sweep(args: argparse.Namespace) -> int:
    from .sim.crashpoints import catalogue
    from .sim.explorer import ChaosSweep, replay

    if args.list_points:
        print(f"{'crash point':<30} {'file':<30} protocol step")
        for point in catalogue():
            flags = []
            if point.torn:
                flags.append("torn")
            if point.recovery:
                flags.append("recovery")
            suffix = f"  [{','.join(flags)}]" if flags else ""
            print(f"{point.name:<30} {point.module:<30} {point.step}{suffix}")
        return 0

    if args.replay:
        reproduced, recorded, fresh, report = replay(args.replay)
        print(report.summary())
        for violation in report.violations:
            print(f"  {violation['oracle']}({violation['subject']}): "
                  f"{violation['detail']}")
        print(f"recorded fingerprint: {recorded}")
        print(f"replayed fingerprint: {fresh}")
        if reproduced:
            print("REPRODUCED byte-for-byte")
            return 0
        print("MISMATCH: the replay diverged from the recorded run")
        return 1

    sweep = ChaosSweep(
        workload=args.workload,
        workers=args.workers,
        instances=args.instances,
        base_seed=args.seed,
        max_time=args.max_time,
        out_dir=args.out,
        verbose=args.verbose,
    )
    failures = 0
    if args.mode in ("all", "exhaustive"):
        result = sweep.exhaustive()
        print("exhaustive one-crash sweep:", result.summary())
        failures += len(result.failures) + len(result.unreached)
    if args.mode in ("all", "random"):
        result = sweep.random_sweep(args.seeds)
        print(f"random nemesis sweep ({args.seeds} seeds):", result.summary())
        failures += len(result.failures)
    if args.mode in ("all", "failover"):
        result = sweep.failover_sweep(replicas=args.replicas)
        print(f"failover sweep ({args.replicas} replicas):", result.summary())
        failures += len(result.failures) + len(result.unreached)
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="workflow scripting language tools"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser("validate", help="parse and semantically check")
    validate.add_argument("script")
    validate.set_defaults(fn=cmd_validate)

    fmt = commands.add_parser("format", help="canonical pretty-print")
    fmt.add_argument("script")
    fmt.add_argument("--in-place", action="store_true")
    fmt.set_defaults(fn=cmd_format)

    inspect = commands.add_parser("inspect", help="structural summary")
    inspect.add_argument("script")
    inspect.set_defaults(fn=cmd_inspect)

    analyze = commands.add_parser(
        "analyze",
        help="static + dynamic outcome reachability, cross-checked "
        "(exit 1 on errors, unreachable outcomes, or disagreement)",
    )
    analyze.add_argument("script")
    analyze.add_argument("task", nargs="?", default=None)
    analyze.add_argument("--max-cases", type=int, default=20_000)
    analyze.add_argument(
        "--static",
        action="store_true",
        help="static analysis only: skip the dynamic explorer and the "
        "side-by-side comparison",
    )
    analyze.add_argument(
        "--sanitize",
        action="store_true",
        help="re-run every reachable witness on the thread-pooled engine "
        "with the runtime sanitizer (vector clocks + locksets) attached; "
        "exit 1 if any dynamic finding lacks a static counterpart",
    )
    analyze.set_defaults(fn=cmd_analyze)

    lint = commands.add_parser(
        "lint",
        help="static analysis report (exit 0 clean/warnings, 1 errors, "
        "2 parse failure)",
    )
    lint.add_argument(
        "scripts",
        nargs="+",
        help=".wf script files or .py files with embedded SCRIPT constants",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report rendering (SARIF 2.1.0 for CI annotation)",
    )
    lint.add_argument("--output", help="write the report to a file instead of stdout")
    lint.add_argument(
        "--strict", action="store_true", help="any finding fails the run"
    )
    lint.set_defaults(fn=cmd_lint)

    plan = commands.add_parser(
        "plan",
        help="compile a script into its incrementalized execution plan "
        "(task ids, slot bitmasks, firing tables) and dump it",
    )
    plan.add_argument("script", help="path to a .wf script")
    plan.add_argument("task", nargs="?", help="top-level task (default: all)")
    plan.add_argument("--json", action="store_true", help="JSON instead of text")
    plan.add_argument(
        "--no-liveness",
        action="store_true",
        help="skip the liveness fixpoint (no live/dead annotations)",
    )
    plan.set_defaults(fn=cmd_plan)

    sanitize = commands.add_parser(
        "sanitize",
        help="run a paper workload under the runtime sanitizer and verify "
        "every dynamic race/inversion/duplicate is statically predicted "
        "(exit 1 on an uncovered dynamic finding)",
    )
    sanitize.add_argument("name", choices=["order", "trip", "service-impact"])
    sanitize.add_argument(
        "--runs", type=int, default=5, metavar="N",
        help="sanitized concurrent runs with the real implementations "
        "(default: 5)",
    )
    sanitize.add_argument(
        "--parallelism", type=int, default=4, metavar="N",
        help="thread-pool width for the sanitized runs (default: 4)",
    )
    sanitize.add_argument(
        "--nemesis",
        action="store_true",
        help="also run one deterministic nemesis schedule (worker crash "
        "after execute, before reply) on the simulated distributed system "
        "and scan worker ledgers for duplicate effects",
    )
    sanitize.add_argument(
        "--seed", type=int, default=0, help="nemesis run seed (default: 0)"
    )
    sanitize.add_argument(
        "--output", metavar="FILE",
        help="write the static report as SARIF with the dynamic findings "
        "in the run's property bag",
    )
    sanitize.set_defaults(fn=cmd_sanitize)

    dot = commands.add_parser("dot", help="Graphviz export")
    dot.add_argument("script")
    dot.add_argument("task", nargs="?", default=None)
    dot.set_defaults(fn=cmd_dot)

    demo = commands.add_parser("demo", help="run a paper example")
    demo.add_argument(
        "name", nargs="?", default="order",
        choices=["order", "trip", "service-impact"],
    )
    demo.add_argument(
        "--load",
        action="store_true",
        help="overload smoke instead of a single instance: a short "
        "sustained traffic burst against a capacity-limited system with "
        "tight admission bounds (exit 1 if any admitted work is lost or "
        "left unfinished)",
    )
    demo.add_argument(
        "--parallelism",
        type=int,
        default=1,
        metavar="N",
        help="run independent ready tasks on N worker threads (default: 1, sequential)",
    )
    demo.add_argument(
        "--distributed",
        action="store_true",
        help="run on the full simulated distributed system (repository, "
        "execution service, worker pool) instead of the local engine",
    )
    demo.add_argument(
        "--workers", type=int, default=3, metavar="N",
        help="worker-node pool size for --distributed (default: 3)",
    )
    demo.add_argument(
        "--replicas", type=int, default=0, metavar="N",
        help="execution-service replicas for --distributed (0 = the legacy "
        "unreplicated service; N > 0 adds a lease arbiter, one primary and "
        "N-1 hot standbys with lease-fenced failover)",
    )
    demo.add_argument(
        "--loss-rate", type=float, default=0.0, metavar="P",
        help="message-loss probability for --distributed (default: 0)",
    )
    demo.add_argument(
        "--chaos-interval", type=float, default=0.0, metavar="T",
        help="mean virtual time between random worker crashes "
        "(0 disables chaos; --distributed only)",
    )
    demo.add_argument(
        "--chaos-downtime", type=float, default=20.0, metavar="T",
        help="how long a chaos-crashed worker stays down (default: 20)",
    )
    demo.add_argument(
        "--seed", type=int, default=0,
        help="seed for latency, loss, chaos and dispatch jitter (default: 0)",
    )
    demo.add_argument(
        "--dispatch-timeout", type=float, default=30.0, metavar="T",
        help="base redispatch delay for --distributed (default: 30)",
    )
    demo.add_argument(
        "--sweep-interval", type=float, default=10.0, metavar="T",
        help="dispatcher sweep period for --distributed (default: 10)",
    )
    demo.add_argument(
        "--no-resilience",
        action="store_true",
        help="use the legacy fixed-interval dispatcher (no backoff, "
        "breakers, health routing or hedging)",
    )
    demo.add_argument(
        "--hedge-delay", type=float, default=None, metavar="T",
        help="hedged-dispatch delay (0 disables hedging; default: "
        "2 x sweep interval)",
    )
    demo.add_argument(
        "--max-redispatches", type=int, default=40, metavar="N",
        help="redispatch cap before a flight is abandoned as a system "
        "failure (default: 40)",
    )
    demo.set_defaults(fn=cmd_demo)

    load = commands.add_parser(
        "load",
        help="sustained-traffic generator: drive the simulated system with "
        "a seeded arrival schedule and print the SLO report "
        "(goodput, sojourn percentiles, shed/refusal counts by class)",
    )
    load.add_argument(
        "--arrival", choices=["poisson", "burst"], default="poisson",
        help="inter-arrival shape (default: poisson)",
    )
    load.add_argument(
        "--rate", type=float, default=0.5, metavar="R",
        help="mean arrivals per virtual second, off-burst (default: 0.5)",
    )
    load.add_argument(
        "--duration", type=float, default=300.0, metavar="T",
        help="arrival-generation horizon in virtual seconds (default: 300)",
    )
    load.add_argument(
        "--cohorts", type=int, default=3, metavar="N",
        help="user cohorts cycling high/normal/low criticality (default: 3)",
    )
    load.add_argument(
        "--skew", type=float, default=0.5, metavar="P",
        help="probability an arrival is premium-cohort / hot-key (default: 0.5)",
    )
    load.add_argument(
        "--seed", type=int, default=0,
        help="seed for the whole schedule; same seed, same report "
        "fingerprint (default: 0)",
    )
    load.add_argument(
        "--drain", type=float, default=600.0, metavar="T",
        help="extra virtual time for admitted work to finish (default: 600)",
    )
    load.add_argument(
        "--slo", type=float, default=120.0, metavar="T",
        help="sojourn bound for SLO goodput; 0 counts raw completions "
        "(default: 120)",
    )
    load.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker-node pool size (default: 2)",
    )
    load.add_argument(
        "--service-time", type=float, default=1.0, metavar="T",
        help="virtual seconds of worker occupancy per task; the finite "
        "capacity that makes overload possible (default: 1)",
    )
    load.add_argument(
        "--lanes", type=int, default=1, metavar="N",
        help="concurrent service lanes per worker (default: 1)",
    )
    load.add_argument(
        "--queue-capacity", type=int, default=16, metavar="N",
        help="bounded admission queue; full means Overloaded refusals "
        "(default: 16)",
    )
    load.add_argument(
        "--window", type=int, default=16, metavar="N",
        help="initial admitted-concurrency window (default: 16)",
    )
    load.add_argument(
        "--no-overload", action="store_true",
        help="disable the admission/shedding layer (the ablation: watch "
        "sojourn diverge under sustained overload)",
    )
    load.add_argument(
        "--json", action="store_true",
        help="print the full SLO report as canonical JSON",
    )
    load.set_defaults(fn=cmd_load)

    chaos = commands.add_parser(
        "chaos-sweep",
        help="deterministic simulation sweep: crash every protocol step, "
        "then random nemesis schedules; record + shrink violations "
        "(exit 1 if any oracle fires or a crash point goes unreached)",
    )
    chaos.add_argument(
        "--mode", choices=["all", "exhaustive", "random", "failover"],
        default="all",
        help="which passes to run (default: all; 'failover' runs the "
        "replicated kill/partition/resurrect-the-primary scenarios over "
        "every paper workload)",
    )
    chaos.add_argument(
        "--workload", choices=["order", "trip", "service-impact"],
        default="order",
        help="paper application to run under chaos (default: order)",
    )
    chaos.add_argument(
        "--replicas", type=int, default=2, metavar="N",
        help="execution-service replicas for the failover pass (default: 2)",
    )
    chaos.add_argument("--workers", type=int, default=2, metavar="N")
    chaos.add_argument(
        "--instances", type=int, default=1, metavar="N",
        help="concurrent workflow instances per run (default: 1)",
    )
    chaos.add_argument(
        "--seeds", type=int, default=64, metavar="N",
        help="random-sweep seed count (default: 64)",
    )
    chaos.add_argument(
        "--seed", type=int, default=0,
        help="base seed for both passes (default: 0)",
    )
    chaos.add_argument(
        "--max-time", type=float, default=5_000.0, metavar="T",
        help="virtual-time budget per run before an instance counts as "
        "stuck (default: 5000)",
    )
    chaos.add_argument(
        "--out", default=None, metavar="DIR",
        help="directory for shrunk repro JSON files (written only on "
        "violation)",
    )
    chaos.add_argument(
        "--replay", default=None, metavar="FILE",
        help="re-run a recorded repro file and verify the report matches "
        "the recorded fingerprint byte-for-byte",
    )
    chaos.add_argument(
        "--list-points", action="store_true",
        help="print the crash-point catalogue and exit",
    )
    chaos.add_argument("--verbose", action="store_true")
    chaos.set_defaults(fn=cmd_chaos_sweep)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
