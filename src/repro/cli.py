"""Command-line interface for the workflow language tools.

Mirrors the repository-service operations plus the graphical export::

    python -m repro.cli validate  script.wf         # parse + semantic check
    python -m repro.cli format    script.wf         # canonical pretty-print
    python -m repro.cli inspect   script.wf         # structural summary
    python -m repro.cli dot       script.wf [task]  # Graphviz export
    python -m repro.cli demo      order|trip|service-impact
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.errors import ParseError, ValidationReport
from .core.graph import structure_summary
from .core.schema import CompoundTaskDecl
from .engine import ConcurrentEngine, LocalEngine
from .engine.trace import render_summary, render_trace
from .lang import compile_script, format_script, parse
from .lang.dot import to_dot


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()


def cmd_validate(args: argparse.Namespace) -> int:
    try:
        script = compile_script(_read(args.script))
    except (ParseError, ValidationReport) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(
        f"OK: {len(script.classes)} classes, {len(script.taskclasses)} task "
        f"classes, {len(script.tasks)} top-level tasks, "
        f"{len(script.templates)} templates"
    )
    return 0


def cmd_format(args: argparse.Namespace) -> int:
    script = parse(_read(args.script))
    text = format_script(script)
    if args.in_place:
        with open(args.script, "w", encoding="utf-8") as fh:
            fh.write(text)
    else:
        print(text, end="")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    script = compile_script(_read(args.script))
    print(f"classes     : {', '.join(sorted(script.classes)) or '-'}")
    print(f"task classes: {', '.join(sorted(script.taskclasses)) or '-'}")
    for name, decl in script.tasks.items():
        if isinstance(decl, CompoundTaskDecl):
            summary = structure_summary(decl)
            print(
                f"compound {name}: {summary['tasks']} constituents, "
                f"{summary['data_edges']} dataflow + "
                f"{summary['notification_edges']} notification arcs, "
                f"{summary['outputs']} outputs"
            )
        else:
            print(f"task {name}: taskclass {decl.taskclass_name}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from .core.analysis import analyze_outcomes

    script = compile_script(_read(args.script))
    analysis = analyze_outcomes(script, args.task, max_cases=args.max_cases)
    print(analysis.summary())
    return 1 if analysis.unreachable else 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .lang import lint_script

    script = compile_script(_read(args.script))
    warnings = lint_script(script)
    for warning in warnings:
        print(warning)
    if not warnings:
        print("clean: no lint findings")
    return 1 if warnings and args.strict else 0


def cmd_dot(args: argparse.Namespace) -> int:
    script = compile_script(_read(args.script))
    print(to_dot(script, args.task), end="")
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    from .workloads import paper_order, paper_service_impact, paper_trip

    demos = {
        "order": (paper_order, {"order": "order-1"}),
        "trip": (paper_trip, {"user": "demo-user"}),
        "service-impact": (paper_service_impact, {"alarmsSource": "alarm-feed"}),
    }
    module, inputs = demos[args.name]
    script = module.build()
    registry = module.default_registry()
    if args.parallelism > 1:
        engine = ConcurrentEngine(registry, parallelism=args.parallelism)
    else:
        engine = LocalEngine(registry)
    result = engine.run(script, inputs=inputs)
    print(f"outcome: {result.outcome}\n")
    print(render_trace(result.log))
    print()
    print(render_summary(result.log))
    return 0 if result.completed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="workflow scripting language tools"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser("validate", help="parse and semantically check")
    validate.add_argument("script")
    validate.set_defaults(fn=cmd_validate)

    fmt = commands.add_parser("format", help="canonical pretty-print")
    fmt.add_argument("script")
    fmt.add_argument("--in-place", action="store_true")
    fmt.set_defaults(fn=cmd_format)

    inspect = commands.add_parser("inspect", help="structural summary")
    inspect.add_argument("script")
    inspect.set_defaults(fn=cmd_inspect)

    analyze = commands.add_parser(
        "analyze", help="outcome reachability analysis (exhaustive, bounded)"
    )
    analyze.add_argument("script")
    analyze.add_argument("task", nargs="?", default=None)
    analyze.add_argument("--max-cases", type=int, default=20_000)
    analyze.set_defaults(fn=cmd_analyze)

    lint = commands.add_parser("lint", help="quality diagnostics")
    lint.add_argument("script")
    lint.add_argument("--strict", action="store_true", help="findings fail the run")
    lint.set_defaults(fn=cmd_lint)

    dot = commands.add_parser("dot", help="Graphviz export")
    dot.add_argument("script")
    dot.add_argument("task", nargs="?", default=None)
    dot.set_defaults(fn=cmd_dot)

    demo = commands.add_parser("demo", help="run a paper example")
    demo.add_argument("name", choices=["order", "trip", "service-impact"])
    demo.add_argument(
        "--parallelism",
        type=int,
        default=1,
        metavar="N",
        help="run independent ready tasks on N worker threads (default: 1, sequential)",
    )
    demo.set_defaults(fn=cmd_demo)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
