"""Hot-standby replication of the execution service (docs/PROTOCOLS.md §12).

One primary :class:`~repro.services.execution.ExecutionService` plus N warm
standbys that tail the primary's durable WAL over the ORB and keep a
ready-to-promote runtime image.  Leadership is a lease granted by
:class:`~repro.replication.lease.LeaseService`; every journal append, worker
dispatch and worker reply is stamped with a monotonically increasing fencing
epoch, and stale-epoch traffic is rejected at the ORB boundary, so a
resurrected old primary can never split-brain the journal.
"""

from .lease import LEASE_INTERFACE, FailureDetector, LeaseService
from .replica import REPLICA_INTERFACE, ReplicatedExecutionService, Role

__all__ = [
    "LEASE_INTERFACE",
    "FailureDetector",
    "LeaseService",
    "REPLICA_INTERFACE",
    "ReplicatedExecutionService",
    "Role",
]
