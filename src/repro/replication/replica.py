"""Hot-standby replica of the execution service (docs/PROTOCOLS.md §12).

A :class:`ReplicatedExecutionService` is an ordinary
:class:`~repro.services.execution.ExecutionService` plus a role.  The
**primary** (current lease holder) serves clients and, after every durability
barrier, ships the newly durable suffix of its WAL to each standby over the
ORB.  A **standby** appends the shipped records to its own stable log, forces
them, and incrementally maintains a *warm image* — fully replayed instance
trees, ready to dispatch — so promotion is an epoch adoption plus a resend,
not a cold replay.

Safety invariants, in the order they are enforced:

* **Demote-before-ack.**  The primary does not treat a durability barrier as
  replicated until every in-sync standby acked it or was demoted from the
  ISR at the lease service.  If the lease service itself is unreachable, the
  primary *self-demotes*: it can no longer prove it is allowed to shrink the
  ISR, so it must stop acknowledging work (the PacificA rule).
* **Fencing epochs.**  Every lease grant advances the epoch.  The primary
  stamps it on journal entries and worker dispatches; standbys refuse
  replication pushes from older epochs and workers refuse older dispatches.
* **Divergence is discarded wholesale.**  A standby that receives a push
  from a *newer* epoch than its local tail wipes its stable log and takes a
  full resync: anything the old primary journaled beyond the last replicated
  barrier was, by demote-before-ack, never acknowledged to anyone.

Promotion replays nothing in the common case: the standby adopts the grant's
epoch, resolves in-doubt two-phase participants against the replicated
coordinator decision log (``txn/recovery.py``), re-arms deadlines with their
journaled *remaining* time, and resumes surviving flights through the
recovery stagger — the same code path as single-node crash recovery.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Sequence, Set

from ..engine.events import WorkflowStatus
from ..orb.broker import CommFailure, Fenced, Interface, ObjectBroker, ObjectNotFound
from ..sim.crashpoints import SimulatedCrash, crash_point
from ..txn.ids import ObjectId, TransactionId
from ..txn.manager import TransactionManager
from ..txn.recovery import resolve_in_doubt
from ..txn.store import ObjectStore
from ..txn.wal import LogRecord
from ..services.execution import EXECUTION_INTERFACE, ExecutionService, _compile_cached

REPLICA_INTERFACE = Interface(
    "WorkflowExecutionReplica",
    EXECUTION_INTERFACE.operations + ("replicate", "repl_status"),
)

# Operations a standby still serves: the replication stream itself and the
# introspection the harness/oracles use.  Everything else is fenced.
_UNFENCED_OPS = frozenset({"replicate", "repl_status"})


class Role(enum.Enum):
    PRIMARY = "primary"
    STANDBY = "standby"


def _wire(record: LogRecord) -> Dict[str, Any]:
    """Plain-data form of a WAL record for the ORB (LSNs are the primary's)."""
    return {
        "plsn": record.lsn,
        "kind": record.kind,
        "txn": [record.txn.number, record.txn.origin] if record.txn else None,
        "obj": record.obj.name if record.obj else None,
        "value": record.value,
    }


class ReplicatedExecutionService(ExecutionService):
    """Execution service replica: primary when holding the lease, warm
    standby otherwise."""

    def __init__(
        self,
        name: str,
        store: ObjectStore,
        broker: ObjectBroker,
        repository_name: str,
        worker_names: List[str],
        *,
        lease_name: str = "lease",
        peer_names: Sequence[str] = (),
        alias: str = "execution",
        repl_interval: float = 5.0,
        **kwargs: Any,
    ) -> None:
        if not kwargs.setdefault("durable", True):
            raise ValueError("replication requires a durable execution service")
        super().__init__(name, store, broker, repository_name, worker_names, **kwargs)
        # Coordinator decisions must live in the replicated store: a promoted
        # standby resolves in-doubt participants against them (recovery.py).
        self.manager = TransactionManager(f"{name}-tm", decision_store=store)
        self.lease_name = lease_name
        self.peer_names = [p for p in peer_names if p != name]
        self.alias = alias
        self.repl_interval = repl_interval
        self.role = Role.STANDBY
        self.lease: Dict[str, Any] = {"holder": None, "epoch": 0, "expires_at": 0.0}
        self.isr: List[str] = []
        # Highest epoch this replica has ever observed (grants, pushes,
        # fenced replies): its floor for accepting replication traffic.
        self._max_epoch_seen = 0
        # Primary-side: last primary-LSN each peer acked (volatile — a new
        # primary starts every peer from a full resync).
        self._standby_acked: Dict[str, int] = {}
        # Peers that failed a push since the last tick: skip until the tick
        # retries them, so a dead standby costs one failed call per interval,
        # not one per barrier.
        self._ship_paused: Set[str] = set()
        self._shipping = False
        # Standby-side: how many journal entries per instance the warm image
        # has applied, and whether the image matches the local durable store
        # (False after a demotion, when the image ran ahead of replication).
        self._image_applied: Dict[str, int] = {}
        self._image_valid = False
        self._tick_armed = False
        self.repl_stats = {
            "pushes": 0,
            "push_failures": 0,
            "tail_applies": 0,
            "resyncs": 0,
            "promotions": 0,
            "demotions": 0,
            "fenced_pushes": 0,
            "promoted_at": None,
        }

    # -- life-cycle -------------------------------------------------------------

    def on_start(self) -> None:
        # No base on_start: the fencing epoch comes from lease grants, not
        # the local incarnation counter, and only a primary runs a sweeper.
        self._try_acquire()
        self._arm_tick()

    def on_recover(self) -> None:
        """A resurrected replica always comes back as a standby.  If its old
        lease is somehow still current, the acquire below re-grants it under
        a fresh epoch — its pre-crash epoch is never reused."""
        self.stats["recoveries"] += 1
        crash_point("exec.recover.pre", self)
        self.role = Role.STANDBY
        self.health.reset()
        self._pending_acks.clear()
        self._sweep_armed = False
        self._jbuf.clear()
        self._jflush_armed = False
        self._standby_acked = {}
        self._ship_paused = set()
        self._tick_armed = False
        self._rebuild_image()
        crash_point("exec.recover.replayed", self)
        self._try_acquire()
        self._arm_tick()

    def is_primary(self) -> bool:
        return self.role is Role.PRIMARY

    def _fence(self, operation: str) -> Optional[str]:
        """ORB gatekeeper: while not primary, refuse everything except the
        replication stream and status introspection."""
        if operation in _UNFENCED_OPS or self.role is Role.PRIMARY:
            return None
        return f"{self.name} is a standby (epoch {self._max_epoch_seen})"

    # -- invocation helpers -----------------------------------------------------

    def _invoke(self, target: str, operation: str, *args: Any) -> Any:
        """ORB call with replica-grade failure handling.

        A :class:`SimulatedCrash` raised inside the *callee* (an armed crash
        point on a standby or the lease node) is a BaseException that would
        otherwise unwind this — alive — caller's whole event, wedging any
        half-dispatched work.  Only a crash of our *own* node may propagate;
        a foreign crash is exactly a communication failure."""
        try:
            return self.broker.invoke(self.node, target, operation, *args)
        except ObjectNotFound as exc:
            raise CommFailure(f"{target}: not registered yet") from exc
        except SimulatedCrash as crash:
            if self.node is not None and crash.node == self.node.name:
                raise
            raise CommFailure(f"{target}: crashed mid-call ({crash.point})") from crash

    # -- leadership -------------------------------------------------------------

    def _try_acquire(self) -> bool:
        try:
            reply = self._invoke(self.lease_name, "acquire", self.name)
        except CommFailure:
            return False
        if reply.get("granted"):
            self._promote(reply)
            return True
        self.lease = {
            "holder": reply.get("holder"),
            "epoch": reply.get("epoch", 0),
            "expires_at": reply.get("expires_at", 0.0),
        }
        self._max_epoch_seen = max(self._max_epoch_seen, reply.get("epoch", 0))
        return False

    def _promote(self, grant: Dict[str, Any]) -> None:
        """Adopt a lease grant: become the primary under its epoch."""
        crash_point("repl.promote.pre", self)
        self.lease = {
            "holder": grant["holder"],
            "epoch": grant["epoch"],
            "expires_at": grant["expires_at"],
        }
        self.epoch = grant["epoch"]
        self.isr = list(grant.get("isr", ()))
        self._max_epoch_seen = max(self._max_epoch_seen, self.epoch)
        self._standby_acked = {}
        self._ship_paused = set()
        self._pending_acks.clear()
        self.health.reset()
        self._jbuf.clear()
        if not self._image_valid:
            # the image ran ahead of the durable store (we were demoted while
            # primary): rebuild from the local durable journal, like crash
            # recovery — the _replay path also re-pins surviving flights
            self._rebuild_image()
        else:
            # warm image: flights rebuilt by the standby's incremental replay
            # are virgin; mark them as redispatches like crash recovery does
            # (the original target may be what took the old primary down)
            for runtime in self.runtimes.values():
                for flight in runtime.in_flight.values():
                    flight.redispatches += 1
        # In-doubt two-phase participants prepared under the old primary are
        # decided by the replicated coordinator decision log (presumed abort).
        resolve_in_doubt(self.store, self._coordinator_decision)
        self.store.recover()
        self.role = Role.PRIMARY
        self.repl_stats["promotions"] += 1
        self.repl_stats["promoted_at"] = self._now()
        # Persist the adopted epoch as the local tail so a crash right after
        # promotion recovers into the same epoch lineage.
        self._persist_tail(self.store.wal.last_durable_lsn, self.epoch)
        # Admission state never crosses a failover: the old primary's queue
        # died with it, so every adopted non-terminal instance counts as
        # admitted and the controller starts this reign unpressured.
        self.admission.rebuild(
            [
                iid
                for iid, runtime in self.runtimes.items()
                if runtime.tree.status is WorkflowStatus.RUNNING
            ],
            self._now(),
        )
        for runtime in list(self.runtimes.values()):
            self._resume_flights(runtime)
            self._arm_deadlines(runtime)
        self._arm_sweeper()
        # Take over the public name: clients re-resolve to the new primary.
        self.broker.register(
            self.alias, REPLICA_INTERFACE, self, self.node, fence=self._fence
        )
        crash_point("repl.promote.post", self)

    def _coordinator_decision(self, tid: TransactionId) -> bool:
        return bool(
            self.store.get_committed(f"_decision:{tid.origin}:{tid.number}", False)
        )

    def _demote_self(self, reason: str, seen_epoch: int = 0) -> None:
        if self.role is not Role.PRIMARY:
            return
        self.role = Role.STANDBY
        self.repl_stats["demotions"] += 1
        self._max_epoch_seen = max(self._max_epoch_seen, seen_epoch, self.epoch)
        self._standby_acked = {}
        self._ship_paused = set()
        # Anything journaled past the last replicated barrier — including the
        # still-buffered entries dropped here — was never acknowledged; the
        # next resync from the rightful primary discards it wholesale.
        self._jbuf.clear()
        self._image_valid = False

    def _demote_peer(self, peer: str) -> None:
        """A push to ``peer`` failed.  An ISR member must be demoted at the
        lease service *before* the barrier counts as replicated; if we cannot
        reach the lease service to do that, we demote ourselves instead."""
        self._ship_paused.add(peer)
        self._standby_acked.pop(peer, None)
        if peer not in self.isr:
            return
        try:
            ok = self._invoke(self.lease_name, "demote", peer, self.epoch)
        except CommFailure:
            self._demote_self("lease service unreachable while demoting "
                              f"{peer}: cannot prove leadership")
            return
        if ok:
            self.isr = [name for name in self.isr if name != peer]
        else:
            self._demote_self("stale epoch at the lease service")

    def _on_fenced_reply(self, reply: Dict[str, Any]) -> None:
        epoch = reply.get("epoch", 0)
        if epoch > self.epoch:
            # the worker has served a newer primary: we are deposed and the
            # lease message just has not reached us yet
            self._demote_self("worker fence: a newer primary exists", epoch)

    # -- periodic replication tick ----------------------------------------------

    def _arm_tick(self) -> None:
        if self._tick_armed or self.node is None or not self.node.alive:
            return
        self._tick_armed = True

        def tick() -> None:
            self._tick_armed = False
            if self.node is None or not self.node.alive:
                return
            self._tick()
            self._arm_tick()

        self.node.call_after(self.repl_interval, tick, label=f"{self.name}-repl-tick")

    def _tick(self) -> None:
        if self.role is Role.PRIMARY:
            self._primary_tick()
        else:
            # Standby: poll for the lease.  Refused while the primary renews
            # on time; the first poll after an expiry wins promotion — the
            # lease duration *is* the failure detector's suspicion timeout.
            self._try_acquire()

    def _primary_tick(self) -> None:
        now = self._now()
        if now >= self.lease["expires_at"]:
            # Fail-safe self-demotion: we could not renew in time, so another
            # replica may already hold a newer lease.  Both sides read the
            # same simulated clock, so this fires before any new grant.
            self._demote_self("lease expired without renewal")
            return
        try:
            reply = self._invoke(self.lease_name, "renew", self.name, self.epoch)
        except CommFailure:
            return  # still leased until expires_at; retry next tick
        if not reply.get("granted"):
            self._demote_self("lease renewal refused", reply.get("epoch", 0))
            return
        self.lease["expires_at"] = reply["expires_at"]
        self.isr = list(reply["isr"])
        self._ship_paused = set()  # retry peers that failed since last tick
        self._post_barrier()  # catch-up push to any lagging peer
        self._enlist_caught_up()

    def _enlist_caught_up(self) -> None:
        for peer in self.peer_names:
            if self.role is not Role.PRIMARY:
                return
            self._maybe_enlist(peer)

    def _maybe_enlist(self, peer: str) -> None:
        """Grow the ISR the moment a standby has acked the full durable
        prefix — eagerly, not just on the tick, so a primary that dies right
        after bootstrap already left an eligible successor behind.  Failure
        is benign: a too-small ISR only costs availability, never safety."""
        if self.role is not Role.PRIMARY or peer in self.isr:
            return
        if self._standby_acked.get(peer, -1) < self.store.wal.last_durable_lsn:
            return
        try:
            if self._invoke(self.lease_name, "enlist", peer, self.epoch):
                self.isr.append(peer)
        except CommFailure:
            pass  # retried at the next barrier or tick

    # -- log shipping (primary side) ---------------------------------------------

    def _post_barrier(self) -> None:
        if self.role is not Role.PRIMARY or self._shipping:
            return
        self._shipping = True  # demotion paths below may themselves barrier
        try:
            target = self.store.wal.last_durable_lsn
            for peer in self.peer_names:
                if self.role is not Role.PRIMARY:
                    return
                if peer in self._ship_paused:
                    continue
                if self._standby_acked.get(peer, -1) >= target:
                    continue
                self._ship_to(peer)
        finally:
            self._shipping = False

    def _ship_to(self, peer: str) -> None:
        acked = self._standby_acked.get(peer)
        reset = acked is None
        from_lsn = 0 if reset else acked
        records = [
            rec for rec in self.store.wal.durable_records() if rec.lsn > from_lsn
        ]
        # A checkpoint-truncated gap needs no resync: the retained log starts
        # with the CHECKPOINT record whose snapshot supersedes the gap.
        if not records and not reset:
            return
        batch = {
            "epoch": self.epoch,
            "writer": self.name,
            "reset": reset,
            "from_lsn": from_lsn,
            "last_lsn": records[-1].lsn if records else from_lsn,
            "records": [_wire(rec) for rec in records],
        }
        self.repl_stats["pushes"] += 1
        try:
            reply = self._invoke(peer, "replicate", batch)
        except CommFailure:
            self.repl_stats["push_failures"] += 1
            self._demote_peer(peer)
            return
        if reply.get("fenced"):
            self._demote_self(f"push fenced by {peer}", reply.get("epoch", 0))
            return
        if reply.get("ok"):
            self._standby_acked[peer] = reply["have"]
            self._maybe_enlist(peer)
            return
        # Cursor disagreement (e.g. the standby under-reported its tail after
        # a crash between force and tail-persist): adopt its position — or a
        # full resync when its tail is from another epoch — and retry once.
        if reply.get("resync"):
            self._standby_acked.pop(peer, None)
        else:
            self._standby_acked[peer] = reply.get("have", 0)
        acked = self._standby_acked.get(peer)
        reset = acked is None
        from_lsn = 0 if reset else acked
        records = [
            rec for rec in self.store.wal.durable_records() if rec.lsn > from_lsn
        ]
        batch = {
            "epoch": self.epoch,
            "writer": self.name,
            "reset": reset,
            "from_lsn": from_lsn,
            "last_lsn": records[-1].lsn if records else from_lsn,
            "records": [_wire(rec) for rec in records],
        }
        self.repl_stats["pushes"] += 1
        try:
            reply = self._invoke(peer, "replicate", batch)
        except CommFailure:
            self.repl_stats["push_failures"] += 1
            self._demote_peer(peer)
            return
        if reply.get("ok"):
            self._standby_acked[peer] = reply["have"]
            self._maybe_enlist(peer)
        elif reply.get("fenced"):
            self._demote_self(f"push fenced by {peer}", reply.get("epoch", 0))
        else:
            self._demote_peer(peer)  # still disagreeing: give up until tick

    # -- replication stream (standby side) ----------------------------------------

    @property
    def _tail_key(self) -> str:
        return f"_repl:tail:{self.name}"

    def _tail(self) -> Dict[str, Any]:
        return dict(self.store.get_committed(self._tail_key, {"lsn": 0, "epoch": 0}))

    def _persist_tail(self, lsn: int, epoch: int) -> None:
        self.manager.run(
            lambda txn: txn.write(self.store, self._tail_key, {"lsn": lsn, "epoch": epoch})
        )
        self.store.sync()

    def replicate(self, batch: Dict[str, Any]) -> Dict[str, Any]:
        """Apply one shipped log batch (primary → this standby)."""
        epoch = batch["epoch"]
        if epoch < self._max_epoch_seen:
            self.repl_stats["fenced_pushes"] += 1
            return {"ok": False, "fenced": True, "epoch": self._max_epoch_seen}
        if self.role is Role.PRIMARY:
            if epoch <= self.epoch:
                self.repl_stats["fenced_pushes"] += 1
                return {"ok": False, "fenced": True, "epoch": self.epoch}
            # a newer primary exists: step down and accept its stream
            self._demote_self("pushed by a newer primary", epoch)
        self._max_epoch_seen = epoch
        tail = self._tail()
        if not batch.get("reset"):
            if tail["epoch"] != epoch:
                # our tail belongs to a deposed epoch: whatever follows the
                # last replicated barrier was never acknowledged — wipe it
                return {"ok": False, "resync": True, "have": tail["lsn"]}
            if tail["lsn"] != batch["from_lsn"]:
                return {"ok": False, "resync": False, "have": tail["lsn"]}
        # The batch is received but nothing applied yet; a crash here loses
        # only volatile state — the persisted tail still names the old
        # cursor, so the primary re-ships idempotently.
        crash_point("repl.tail.apply", self)
        if batch.get("reset"):
            self._local_reset()
        for rec in batch["records"]:
            txn = TransactionId(rec["txn"][0], rec["txn"][1]) if rec["txn"] else None
            obj = ObjectId(rec["obj"]) if rec["obj"] is not None else None
            self.store.wal.append(rec["kind"], txn, obj, rec["value"])
        self.store.wal.force()
        self.store.sync()
        self.store.recover()
        # Tail *after* the records: a crash in between under-reports, and the
        # duplicate re-ship replays identically (same txns, same values).
        self._persist_tail(batch["last_lsn"], epoch)
        self._refresh_image()
        self._image_valid = True
        self.repl_stats["tail_applies"] += 1
        return {"ok": True, "have": batch["last_lsn"]}

    def _local_reset(self) -> None:
        """Full resync: wipe local stable storage and the warm image."""
        self.repl_stats["resyncs"] += 1
        self.store.wal.reset()
        self.store.crash()  # rebuild cache/locks from the (now empty) log
        self.runtimes = {}
        self._image_applied = {}

    # -- warm image ---------------------------------------------------------------

    def _refresh_image(self) -> None:
        """Bring the ready-to-promote image up to the local durable journal.

        Incremental: each instance remembers how many journal entries the
        image has applied and replays only the new ones, through the same
        ``_replay_entry`` used by crash recovery — so the image is, at every
        barrier, exactly the tree a recovery replay would build.  Standbys
        never dispatch: flights accumulate in ``in_flight`` unsent until
        promotion resumes them."""
        for iid in self.store.get_committed("instance-index", []):
            meta = self.store.get_committed(f"instance:{iid}:meta")
            if meta is None:
                continue
            runtime = self.runtimes.get(iid)
            applied = self._image_applied.get(iid, 0)
            if runtime is None:
                script = _compile_cached(meta["script_text"])
                runtime = self._fresh_runtime(iid, script, meta)
                self.runtimes[iid] = runtime
                applied = 0
            total = meta["journal_len"]
            if total > applied:
                entries = self.store.get_committed_many(
                    f"instance:{iid}:journal:{n}" for n in range(applied, total)
                )
                for entry in entries:
                    if entry is None:
                        break
                    self._replay_entry(runtime, entry)
                    applied += 1
            self._image_applied[iid] = applied

    def _rebuild_image(self) -> None:
        """Cold rebuild of the warm image from local durable state."""
        self.runtimes = {}
        self._image_applied = {}
        tail = self._tail()
        self._max_epoch_seen = max(self._max_epoch_seen, tail["epoch"])
        self._refresh_image()
        self._image_valid = True

    # -- settlement ----------------------------------------------------------------

    def replication_settled(self) -> bool:
        """True once every in-sync standby acked the full durable prefix.
        The harness gates durability observations on this: an acknowledged
        outcome must survive the loss of any single replica."""
        if self.role is not Role.PRIMARY:
            return False
        target = self.store.wal.last_durable_lsn
        return all(
            self._standby_acked.get(peer, -1) >= target
            for peer in self.peer_names
            if peer in self.isr
        )

    # -- client-facing overrides ----------------------------------------------------

    def _ensure_group_ack(self) -> None:
        """Raised-on-demotion barrier for synchronous mutating operations: if
        serving this call demoted us (lease unreachable, fenced push), the
        client must not take the reply as acknowledged."""
        if self.role is not Role.PRIMARY:
            raise Fenced(
                f"{self.name}: demoted while serving "
                f"(epoch {self.epoch} superseded)"
            )

    def instantiate(self, *args: Any, **kwargs: Any) -> str:
        iid = super().instantiate(*args, **kwargs)
        self.flush_journal()  # ship the meta even when nothing dispatched yet
        self._ensure_group_ack()
        return iid

    def reconfigure(self, *args: Any, **kwargs: Any) -> bool:
        ok = super().reconfigure(*args, **kwargs)
        self._ensure_group_ack()
        return ok

    def force_abort(self, *args: Any, **kwargs: Any) -> bool:
        ok = super().force_abort(*args, **kwargs)
        self._ensure_group_ack()
        return ok

    def complete_task(self, *args: Any, **kwargs: Any) -> bool:
        ok = super().complete_task(*args, **kwargs)
        self._ensure_group_ack()
        return ok

    def import_instance(self, snapshot: Dict[str, Any]) -> str:
        iid = super().import_instance(snapshot)
        self.flush_journal()
        self._ensure_group_ack()
        return iid

    # -- introspection ---------------------------------------------------------------

    def repl_status(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "role": self.role.value,
            "epoch": self.epoch,
            "max_epoch_seen": self._max_epoch_seen,
            "lease": dict(self.lease),
            "isr": list(self.isr),
            "acked": dict(self._standby_acked),
            "tail": self._tail(),
            "image_valid": self._image_valid,
            "instances": sorted(self.runtimes),
            "settled": self.replication_settled(),
            "stats": dict(self.repl_stats),
        }
