"""Leases and failure detection for execution-service replication.

The :class:`LeaseService` is the small, durable arbiter of leadership: at any
instant at most one replica holds the lease, and every grant — including a
re-grant to the same holder after an expiry — advances the **fencing epoch**.
The epoch is the replication protocol's whole safety story in one integer
(docs/PROTOCOLS.md §12):

* the primary stamps it on every journal entry and worker dispatch;
* standbys and workers refuse traffic from older epochs;
* so a deposed primary — crashed and resurrected, partitioned and healed,
  or simply paused — can act only on its own local state, which the next
  full resync discards wholesale.

Failure detection is implicit and lease-based, in the spirit of
PacificA/Chubby: a primary that cannot renew before ``expires_at`` stops
acknowledging work (it self-demotes), and a standby acquires the moment the
lease has visibly expired.  Both sides read the same simulated clock
(``net/clock.py``), so "expired for the arbiter" and "expired for the
holder" cannot disagree.  The :class:`FailureDetector` augments that with
the resilience layer's breaker machinery for *reporting*: consecutive missed
renewals trip a per-holder circuit breaker, which `lease_info` surfaces so
operators (and tests) can see suspicion building before the lease lapses.

The service also tracks the **in-sync replica set (ISR)**: the primary
enlists a standby once it has acked the full durable prefix and demotes it
from the set when a push fails.  A lease is only ever granted to an ISR
member (after bootstrap), which is what makes failover lossless: every
acknowledged barrier was acked by every ISR member, and only ISR members can
be promoted.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..net.node import Service
from ..orb.broker import Interface
from ..resilience import BreakerConfig, BreakerState, CircuitBreaker
from ..sim.crashpoints import crash_point
from ..txn.manager import TransactionManager
from ..txn.store import ObjectStore

LEASE_INTERFACE = Interface(
    "ReplicationLease",
    ("acquire", "renew", "release", "demote", "enlist", "lease_info"),
)

_FRESH = {"holder": None, "epoch": 0, "expires_at": 0.0}


class FailureDetector:
    """Suspicion accounting over lease renewals.

    Reuses the resilience layer's :class:`CircuitBreaker`: each missed
    renewal window is recorded as a failure, each renewal as a success.  An
    open breaker means the holder is *suspected* — purely informational
    here (safety comes from the lease expiry itself), but it gives
    ``lease_info`` an operator-readable liveness signal and gives tests a
    hook to assert the detector converges.
    """

    def __init__(self) -> None:
        self._breakers: Dict[str, CircuitBreaker] = {}

    def _breaker(self, holder: str) -> CircuitBreaker:
        breaker = self._breakers.get(holder)
        if breaker is None:
            breaker = CircuitBreaker(BreakerConfig(), name=f"lease:{holder}")
            self._breakers[holder] = breaker
        return breaker

    def renewal(self, holder: str, now: float) -> None:
        self._breaker(holder).record_success(now)

    def missed(self, holder: str, now: float) -> None:
        self._breaker(holder).record_failure(now)

    def suspected(self, holder: str, now: float) -> bool:
        breaker = self._breakers.get(holder)
        return breaker is not None and breaker.state(now) is not BreakerState.CLOSED

    def snapshot(self, now: float) -> Dict[str, str]:
        return {name: b.state(now).value for name, b in self._breakers.items()}


class LeaseService(Service):
    """Durable lease arbiter, one per replicated execution group."""

    def __init__(
        self,
        name: str,
        store: ObjectStore,
        duration: float = 60.0,
    ) -> None:
        super().__init__(name)
        self.store = store
        self.duration = duration
        self.manager = TransactionManager(f"{name}-tm")
        self.detector = FailureDetector()
        self.stats = {"grants": 0, "renewals": 0, "refusals": 0, "demotions": 0}

    # -- helpers ---------------------------------------------------------------

    def _now(self) -> float:
        return self.node.clock.now if self.node is not None else 0.0

    def _lease(self) -> Dict[str, Any]:
        return dict(self.store.get_committed("lease", _FRESH))

    def _isr(self) -> List[str]:
        return list(self.store.get_committed("isr", []))

    def _persist(self, lease: Dict[str, Any], isr: List[str]) -> None:
        def body(txn) -> None:
            txn.write(self.store, "lease", lease)
            txn.write(self.store, "isr", isr)

        self.manager.run(body)
        self.store.sync()

    def _refuse(self, lease: Dict[str, Any], reason: str) -> Dict[str, Any]:
        self.stats["refusals"] += 1
        return {
            "granted": False,
            "reason": reason,
            "holder": lease["holder"],
            "epoch": lease["epoch"],
            "expires_at": lease["expires_at"],
            "isr": self._isr(),
        }

    # -- ORB operations --------------------------------------------------------

    def acquire(self, candidate: str) -> Dict[str, Any]:
        """Try to take the lease.  Granted iff the lease is free or expired
        AND the candidate is eligible (in the ISR, or it is the bootstrap
        grant).  Every grant advances the epoch — even a re-grant to the
        previous holder — so promotion is always visible as an epoch change.
        """
        now = self._now()
        lease = self._lease()
        isr = self._isr()
        if (
            lease["holder"] is not None
            and lease["holder"] != candidate
            and now < lease["expires_at"]
        ):
            return self._refuse(lease, "lease held and unexpired")
        if lease["epoch"] > 0 and isr and candidate not in isr:
            # a lagging replica must not be promoted: its durable prefix may
            # be missing acknowledged barriers
            return self._refuse(lease, "candidate not in the in-sync set")
        if lease["holder"] is not None and lease["holder"] != candidate:
            self.detector.missed(lease["holder"], now)  # expired: suspect it
        # The grant point.  A crash here loses nothing: the grant was never
        # persisted nor returned, and the candidate simply retries.
        crash_point("repl.lease.grant", self)
        granted = {
            "holder": candidate,
            "epoch": lease["epoch"] + 1,
            "expires_at": now + self.duration,
        }
        if candidate not in isr:
            isr = isr + [candidate]
        self._persist(granted, isr)
        self.detector.renewal(candidate, now)
        self.stats["grants"] += 1
        return {"granted": True, "isr": isr, **granted}

    def renew(self, holder: str, epoch: int) -> Dict[str, Any]:
        """Extend the lease.  Refused unless (holder, epoch) match the
        current grant and it has not expired — a holder that slept through
        its own expiry must re-acquire (and receive a fresh epoch)."""
        now = self._now()
        lease = self._lease()
        if lease["holder"] != holder or lease["epoch"] != epoch:
            return self._refuse(lease, "not the current holder")
        if now >= lease["expires_at"]:
            self.detector.missed(holder, now)
            return self._refuse(lease, "lease expired; re-acquire")
        lease["expires_at"] = now + self.duration
        self._persist(lease, self._isr())
        self.detector.renewal(holder, now)
        self.stats["renewals"] += 1
        return {"granted": True, "isr": self._isr(), **lease}

    def release(self, holder: str, epoch: int) -> bool:
        """Voluntary release (planned handover): expire the lease now."""
        lease = self._lease()
        if lease["holder"] != holder or lease["epoch"] != epoch:
            return False
        lease["expires_at"] = self._now()
        self._persist(lease, self._isr())
        return True

    def demote(self, peer: str, epoch: int) -> bool:
        """Primary (holding ``epoch``) reports that ``peer`` failed to ack a
        replication push: remove it from the ISR.  The primary must not ack
        client work until the unreachable standby is demoted — otherwise an
        acknowledged barrier could exist only on nodes that then both fail.
        """
        lease = self._lease()
        if lease["epoch"] != epoch:
            return False  # stale primary: its view of the ISR is obsolete
        isr = [name for name in self._isr() if name != peer]
        self._persist(lease, isr)
        self.detector.missed(peer, self._now())
        self.stats["demotions"] += 1
        return True

    def enlist(self, peer: str, epoch: int) -> bool:
        """Primary reports that ``peer`` has caught up to the full durable
        prefix: add it (back) to the ISR."""
        lease = self._lease()
        if lease["epoch"] != epoch:
            return False
        isr = self._isr()
        if peer not in isr:
            self._persist(lease, isr + [peer])
        self.detector.renewal(peer, self._now())
        return True

    def lease_info(self) -> Dict[str, Any]:
        lease = self._lease()
        return {
            **lease,
            "now": self._now(),
            "isr": self._isr(),
            "suspected": self.detector.snapshot(self._now()),
            "stats": dict(self.stats),
        }
