"""Synthetic workload generators for the scalability and baseline benches.

All generators return ``(script, registry, root_task, inputs)`` ready to run
on any engine.  Shapes:

* :func:`chain` — t1 -> t2 -> ... -> tn (pure dataflow pipeline);
* :func:`fan` — one producer, ``width`` parallel consumers, one joiner
  (fan-out/fan-in, the Fig. 1 diamond generalised);
* :func:`diamond` — exactly Fig. 1: t1; t2, t3 in parallel; t4 joins
  (t2's arc is a notification, t3's and t4's are dataflow, as drawn);
* :func:`random_dag` — ``n`` tasks, each drawing 1..``max_deps`` dependencies
  from earlier tasks (guaranteed acyclic), seeded and reproducible;
* :func:`script_text` — canonical source text of any generated script, for
  parser benchmarks.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.builder import ScriptBuilder, from_input, from_output
from ..core.schema import Script
from ..engine import ImplementationRegistry, outcome
from ..lang import format_script

Workload = Tuple[Script, ImplementationRegistry, str, Dict[str, object]]


def _noop_registry(code_names: Iterable[str], payload: str = "x") -> ImplementationRegistry:
    reg = ImplementationRegistry()

    def make(code: str):
        def fn(ctx):
            first = next(iter(ctx.inputs.values()), None)
            value = first.value if first is not None else payload
            return outcome("done", out=f"{value}")

        return fn

    for code in code_names:
        reg.register(code, make(code))
    return reg


def _stage_taskclass(b: ScriptBuilder) -> None:
    b.object_class("Data")
    b.taskclass("Stage").input_set("main", inp="Data").outcome("done", out="Data")


def chain(length: int) -> Workload:
    """A linear pipeline of ``length`` tasks."""
    if length < 1:
        raise ValueError("length must be >= 1")
    b = ScriptBuilder()
    _stage_taskclass(b)
    b.taskclass("Root").input_set("main", inp="Data").outcome("done", out="Data")
    root = b.compound("pipeline", "Root")
    previous_source = from_input("pipeline", "main", "inp")
    for index in range(length):
        name = f"t{index + 1}"
        root.task(name, "Stage").implementation(code="stage").input(
            "main", "inp", previous_source
        ).up()
        previous_source = from_output(name, "done", "out")
    root.output("done").object(
        "out", from_output(f"t{length}", "done", "out")
    ).up()
    root.up()
    script = b.build()
    return script, _noop_registry(["stage"]), "pipeline", {"inp": "seed"}


def fan(width: int) -> Workload:
    """One source task fanning out to ``width`` workers, joined by a sink
    that requires a notification from every worker."""
    if width < 1:
        raise ValueError("width must be >= 1")
    b = ScriptBuilder()
    _stage_taskclass(b)
    b.taskclass("Root").input_set("main", inp="Data").outcome("done", out="Data")
    root = b.compound("fan", "Root")
    root.task("source", "Stage").implementation(code="stage").input(
        "main", "inp", from_input("fan", "main", "inp")
    ).up()
    for index in range(width):
        root.task(f"w{index + 1}", "Stage").implementation(code="stage").input(
            "main", "inp", from_output("source", "done", "out")
        ).up()
    sink = root.task("sink", "Stage").implementation(code="stage").input(
        "main", "inp", from_output("w1", "done", "out")
    )
    for index in range(1, width):
        sink.notify("main", from_output(f"w{index + 1}", "done"))
    sink.up()
    root.output("done").object("out", from_output("sink", "done", "out")).up()
    root.up()
    script = b.build()
    return script, _noop_registry(["stage"]), "fan", {"inp": "seed"}


def diamond() -> Workload:
    """Fig. 1 exactly: t2/t3 start after t1; t4 starts after both.

    t1->t2 is a *notification* (dotted in the figure), t1->t3, t2->t4 and
    t3->t4 carry data (solid arcs)."""
    b = ScriptBuilder()
    b.object_class("Data")
    b.taskclass("Produce").input_set("main").outcome("done", out="Data")
    b.taskclass("Consume").input_set("main", inp="Data").outcome("done", out="Data")
    b.taskclass("Join").input_set("main", left="Data", right="Data").outcome(
        "done", out="Data"
    )
    b.taskclass("Root").input_set("main").outcome("done", out="Data")
    root = b.compound("fig1", "Root")
    root.task("t1", "Produce").implementation(code="produce").notify(
        "main", from_input("fig1", "main")
    ).up()
    root.task("t2", "Produce").implementation(code="produce").notify(
        "main", from_output("t1", "done")
    ).up()
    root.task("t3", "Consume").implementation(code="consume").input(
        "main", "inp", from_output("t1", "done", "out")
    ).up()
    root.task("t4", "Join").implementation(code="join").input(
        "main", "left", from_output("t2", "done", "out")
    ).input("main", "right", from_output("t3", "done", "out")).up()
    root.output("done").object("out", from_output("t4", "done", "out")).up()
    root.up()
    script = b.build()
    reg = ImplementationRegistry()
    reg.register("produce", lambda ctx: outcome("done", out=f"{ctx.task_path}"))
    reg.register("consume", lambda ctx: outcome("done", out=f"c({ctx.value('inp')})"))
    reg.register(
        "join",
        lambda ctx: outcome("done", out=f"join({ctx.value('left')},{ctx.value('right')})"),
    )
    return script, reg, "fig1", {}


def random_dag(n: int, max_deps: int = 3, seed: int = 0) -> Workload:
    """A random acyclic workflow of ``n`` tasks; reproducible under a seed."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = random.Random(seed)
    b = ScriptBuilder()
    _stage_taskclass(b)
    b.taskclass("Root").input_set("main", inp="Data").outcome("done", out="Data")
    root = b.compound("dag", "Root")
    for index in range(n):
        name = f"t{index + 1}"
        task = root.task(name, "Stage").implementation(code="stage")
        if index == 0:
            task.input("main", "inp", from_input("dag", "main", "inp"))
        else:
            deps = rng.sample(range(index), k=min(index, rng.randint(1, max_deps)))
            first, *rest = sorted(deps)
            task.input("main", "inp", from_output(f"t{first + 1}", "done", "out"))
            for dep in rest:
                task.notify("main", from_output(f"t{dep + 1}", "done"))
        task.up()
    root.output("done").object("out", from_output(f"t{n}", "done", "out")).up()
    root.up()
    script = b.build()
    return script, _noop_registry(["stage"]), "dag", {"inp": "seed"}


def script_text(workload: Workload) -> str:
    """Canonical source text for a generated workload (parser benchmarks)."""
    return format_script(workload[0])
