"""§5.2 / Fig. 7 — the electronic order processing application.

The script below is the paper's own listing, with one correction recorded in
DESIGN.md: the paper's ``outputobject dispatchNote from { dispatchNote of
task dispatch ... }`` names an object that the ``Dispatch`` task class calls
``dispatch``; we use the declared name (our validator rejects the typo, which
is the point of having a validator).
"""

from __future__ import annotations

from typing import Optional

from ..core.schema import Script
from ..engine import ImplementationRegistry, abort, outcome
from ..lang import compile_script

SCRIPT_TEXT = """
class Order;
class DispatchNote;
class PaymentInfo;
class StockInfo;

taskclass ProcessOrderApplication
{
    inputs { input main { order of class Order } };
    outputs
    {
        outcome orderCompleted { dispatchNote of class DispatchNote };
        outcome orderCancelled { }
    }
};

taskclass PaymentAuthorisation
{
    inputs { input main { order of class Order } };
    outputs
    {
        outcome authorised { paymentInfo of class PaymentInfo };
        outcome notAuthorised { }
    }
};

taskclass CheckStock
{
    inputs { input main { order of class Order } };
    outputs
    {
        outcome stockAvailable { stockInfo of class StockInfo };
        outcome stockNotAvailable { }
    }
};

taskclass Dispatch
{
    inputs { input main { stockInfo of class StockInfo } };
    outputs
    {
        outcome dispatchCompleted { dispatch of class DispatchNote };
        abort outcome dispatchFailed { }
    }
};

taskclass PaymentCapture
{
    inputs { input main { paymentInfo of class PaymentInfo } };
    outputs { outcome done { } }
};

compoundtask processOrderApplication of taskclass ProcessOrderApplication
{
    task paymentAuthorisation of taskclass PaymentAuthorisation
    {
        implementation { "code" is "refPaymentAuthorisation" };
        inputs
        {
            input main
            {
                inputobject order from
                {
                    order of task processOrderApplication if input main
                }
            }
        }
    };
    task checkStock of taskclass CheckStock
    {
        implementation { "code" is "refCheckStock" };
        inputs
        {
            input main
            {
                inputobject order from
                {
                    order of task processOrderApplication if input main
                }
            }
        }
    };
    task dispatch of taskclass Dispatch
    {
        implementation { "code" is "refDispatch" };
        inputs
        {
            input main
            {
                notification from { task paymentAuthorisation if output authorised };
                inputobject stockInfo from
                {
                    stockInfo of task checkStock if output stockAvailable
                }
            }
        }
    };
    task paymentCapture of taskclass PaymentCapture
    {
        implementation { "code" is "refPaymentCapture" };
        inputs
        {
            input main
            {
                notification from { task dispatch if output dispatchCompleted };
                inputobject paymentInfo from
                {
                    paymentInfo of task paymentAuthorisation if output authorised
                }
            }
        }
    };
    outputs
    {
        outcome orderCompleted
        {
            notification from { task paymentCapture if output done };
            outputobject dispatchNote from
            {
                dispatch of task dispatch if output dispatchCompleted
            }
        };
        outcome orderCancelled
        {
            notification from
            {
                task paymentAuthorisation if output notAuthorised;
                task checkStock if output stockNotAvailable;
                task dispatch if output dispatchFailed
            }
        }
    }
};
"""

ROOT_TASK = "processOrderApplication"


def build() -> Script:
    """Parse and validate the order-processing script."""
    return compile_script(SCRIPT_TEXT)


def default_registry(
    authorise: bool = True,
    in_stock: bool = True,
    dispatch_ok: bool = True,
    registry: Optional[ImplementationRegistry] = None,
) -> ImplementationRegistry:
    """Bind implementations whose behaviour the flags control, so every path
    of Fig. 7 (completed / cancelled at each stage) can be exercised."""
    reg = registry or ImplementationRegistry()

    @reg.implementation("refPaymentAuthorisation")
    def payment_authorisation(ctx):
        if authorise:
            return outcome("authorised", paymentInfo=f"auth:{ctx.value('order')}")
        return outcome("notAuthorised")

    @reg.implementation("refCheckStock")
    def check_stock(ctx):
        if in_stock:
            return outcome("stockAvailable", stockInfo=f"stock:{ctx.value('order')}")
        return outcome("stockNotAvailable")

    @reg.implementation("refDispatch")
    def dispatch(ctx):
        if dispatch_ok:
            return outcome("dispatchCompleted", dispatch=f"note:{ctx.value('stockInfo')}")
        return abort("dispatchFailed")

    @reg.implementation("refPaymentCapture")
    def payment_capture(ctx):
        return outcome("done")

    return reg
