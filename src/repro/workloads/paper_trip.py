"""§5.3 / Figs. 8-9 — the business trip reservation application.

The paper gives this application only in fragments; the script below fills in
the elided task classes and outputs so that every behaviour the prose
describes is present:

* ``tripReservation`` (Fig. 8) contains the looping compound
  ``businessReservation`` (BR) and ``printTickets`` (PT), and exposes the
  flight cost early through the ``mark toPay`` output (quoted verbatim from
  the paper).
* ``businessReservation`` (Fig. 9) contains ``dataAcquisition`` (DA), the
  nested compound ``checkFlightReservation`` (CFR) running three airline
  queries in parallel, ``flightReservation`` (FR, which releases the cost via
  a *mark* before finishing), ``hotelReservation`` (HR, which uses a *repeat
  outcome* for its several booking attempts) and the compensating task
  ``flightCancellation`` (FC).
* BR's ``retry`` repeat outcome feeds its own ``user`` input back (the
  paper's fragment, verbatim), making the whole compound loop; its abort
  outcome fires when any of the first three tasks fails, as the prose
  demands.
"""

from __future__ import annotations

from typing import Optional

from ..core.schema import Script
from ..engine import ImplementationRegistry, outcome, repeat
from ..lang import compile_script

SCRIPT_TEXT = """
class UserInfo;
class TripRequest;
class FlightInfo;
class Plane;
class HotelInfo;
class Cost;
class Tickets;

taskclass TripReservation
{
    inputs { input main { user of class UserInfo } };
    outputs
    {
        outcome tripArranged { tickets of class Tickets };
        outcome tripFailed { };
        mark toPay { cost of class Cost }
    }
};

taskclass BusinessReservation
{
    inputs { input main { user of class UserInfo } };
    outputs
    {
        outcome success
        {
            cost of class Cost;
            plane of class Plane;
            hotel of class HotelInfo
        };
        repeat outcome retry { user of class UserInfo };
        abort outcome reservationAborted { }
    }
};

taskclass DataAcquisition
{
    inputs { input main { user of class UserInfo } };
    outputs
    {
        outcome acquired { request of class TripRequest };
        outcome acquisitionFailed { }
    }
};

taskclass CheckFlightReservation
{
    inputs { input main { request of class TripRequest } };
    outputs
    {
        outcome flightFound { flight of class FlightInfo };
        outcome noFlight { }
    }
};

taskclass QueryAirline
{
    inputs { input main { request of class TripRequest } };
    outputs
    {
        outcome quote { flight of class FlightInfo };
        outcome noQuote { }
    }
};

taskclass FlightReservation
{
    inputs { input main { flight of class FlightInfo } };
    outputs
    {
        mark costKnown { cost of class Cost };
        outcome reserved { plane of class Plane };
        outcome reservationFailed { }
    }
};

taskclass HotelReservation
{
    inputs
    {
        input main { request of class TripRequest }
    };
    outputs
    {
        outcome booked { hotel of class HotelInfo };
        repeat outcome tryAgain { };
        outcome failed { }
    }
};

taskclass FlightCancellation
{
    inputs { input main { plane of class Plane } };
    outputs { outcome cancelled { } }
};

taskclass PrintTickets
{
    inputs
    {
        input main
        {
            plane of class Plane;
            hotel of class HotelInfo
        }
    };
    outputs { outcome printed { tickets of class Tickets } }
};

compoundtask tripReservation of taskclass TripReservation
{
    compoundtask businessReservation of taskclass BusinessReservation
    {
        inputs
        {
            input main
            {
                inputobject user from
                {
                    user of task tripReservation if input main;
                    user of task businessReservation if output retry
                }
            }
        };
        task dataAcquisition of taskclass DataAcquisition
        {
            implementation { "code" is "refDataAcquisition" };
            inputs
            {
                input main
                {
                    inputobject user from
                    {
                        user of task businessReservation if input main
                    }
                }
            }
        };
        compoundtask checkFlightReservation of taskclass CheckFlightReservation
        {
            inputs
            {
                input main
                {
                    inputobject request from
                    {
                        request of task dataAcquisition if output acquired
                    }
                }
            };
            task queryAirlineOne of taskclass QueryAirline
            {
                implementation { "code" is "refQueryAirlineOne" };
                inputs
                {
                    input main
                    {
                        inputobject request from
                        {
                            request of task checkFlightReservation if input main
                        }
                    }
                }
            };
            task queryAirlineTwo of taskclass QueryAirline
            {
                implementation { "code" is "refQueryAirlineTwo" };
                inputs
                {
                    input main
                    {
                        inputobject request from
                        {
                            request of task checkFlightReservation if input main
                        }
                    }
                }
            };
            task queryAirlineThree of taskclass QueryAirline
            {
                implementation { "code" is "refQueryAirlineThree" };
                inputs
                {
                    input main
                    {
                        inputobject request from
                        {
                            request of task checkFlightReservation if input main
                        }
                    }
                }
            };
            outputs
            {
                outcome flightFound
                {
                    outputobject flight from
                    {
                        flight of task queryAirlineOne if output quote;
                        flight of task queryAirlineTwo if output quote;
                        flight of task queryAirlineThree if output quote
                    }
                };
                outcome noFlight
                {
                    notification from { task queryAirlineOne if output noQuote };
                    notification from { task queryAirlineTwo if output noQuote };
                    notification from { task queryAirlineThree if output noQuote }
                }
            }
        };
        task flightReservation of taskclass FlightReservation
        {
            implementation { "code" is "refFlightReservation" };
            inputs
            {
                input main
                {
                    inputobject flight from
                    {
                        flight of task checkFlightReservation if output flightFound
                    }
                }
            }
        };
        task hotelReservation of taskclass HotelReservation
        {
            implementation { "code" is "refHotelReservation" };
            inputs
            {
                input main
                {
                    notification from { task flightReservation if output reserved };
                    inputobject request from
                    {
                        request of task dataAcquisition if output acquired
                    }
                }
            }
        };
        task flightCancellation of taskclass FlightCancellation
        {
            implementation { "code" is "refFlightCancellation" };
            inputs
            {
                input main
                {
                    notification from { task hotelReservation if output failed };
                    inputobject plane from
                    {
                        plane of task flightReservation
                    }
                }
            }
        };
        outputs
        {
            outcome success
            {
                outputobject cost from
                {
                    cost of task flightReservation if output costKnown
                };
                outputobject plane from
                {
                    plane of task flightReservation if output reserved
                };
                outputobject hotel from
                {
                    hotel of task hotelReservation if output booked
                }
            };
            repeat outcome retry
            {
                notification from { task flightCancellation if output cancelled };
                outputobject user from
                {
                    user of task businessReservation if input main
                }
            };
            abort outcome reservationAborted
            {
                notification from
                {
                    task dataAcquisition if output acquisitionFailed;
                    task checkFlightReservation if output noFlight;
                    task flightReservation if output reservationFailed
                }
            }
        }
    };
    task printTickets of taskclass PrintTickets
    {
        implementation { "code" is "refPrintTickets" };
        inputs
        {
            input main
            {
                inputobject plane from
                {
                    plane of task businessReservation if output success
                };
                inputobject hotel from
                {
                    hotel of task businessReservation if output success
                }
            }
        }
    };
    outputs
    {
        outcome tripArranged
        {
            outputobject tickets from
            {
                tickets of task printTickets if output printed
            }
        };
        outcome tripFailed
        {
            notification from
            {
                task businessReservation if output reservationAborted
            }
        };
        mark toPay
        {
            outputobject cost from
            {
                cost of task businessReservation if output success
            }
        }
    }
};
"""

ROOT_TASK = "tripReservation"


def build() -> Script:
    return compile_script(SCRIPT_TEXT)


def default_registry(
    airline_quotes: tuple = (None, 420.0, 380.0),
    max_price: float = 500.0,
    flight_ok: bool = True,
    hotel_attempts_needed: int = 2,
    hotel_max_tries: int = 3,
    hotel_rounds_until_success: int = 1,
    registry: Optional[ImplementationRegistry] = None,
) -> ImplementationRegistry:
    """Implementations driving every path of Figs. 8-9.

    ``airline_quotes``: per-airline price or None (no quote).
    ``hotel_attempts_needed``: how many repeat attempts before a booking
    succeeds *within one BR round* (must be < ``hotel_max_tries`` to succeed).
    ``hotel_rounds_until_success``: on earlier BR rounds the hotel never books
    (forcing flight cancellation + BR retry); 1 means the first round works.
    """
    reg = registry or ImplementationRegistry()
    state = {"round": 0}

    @reg.implementation("refDataAcquisition")
    def data_acquisition(ctx):
        state["round"] += 1
        user = ctx.value("user")
        return outcome("acquired", request=f"request({user},max={max_price})")

    def airline(index: int):
        def query(ctx):
            price = airline_quotes[index] if index < len(airline_quotes) else None
            if price is None or price > max_price:
                return outcome("noQuote")
            return outcome("quote", flight=f"flight#{index}@{price}")

        return query

    reg.register("refQueryAirlineOne", airline(0))
    reg.register("refQueryAirlineTwo", airline(1))
    reg.register("refQueryAirlineThree", airline(2))

    @reg.implementation("refFlightReservation")
    def flight_reservation(ctx):
        if not flight_ok:
            return outcome("reservationFailed")
        flight = ctx.value("flight")
        price = float(str(flight).rsplit("@", 1)[1])
        ctx.mark("costKnown", cost=price)
        return outcome("reserved", plane=f"plane({flight})")

    @reg.implementation("refHotelReservation")
    def hotel_reservation(ctx):
        if state["round"] < hotel_rounds_until_success:
            if ctx.repeats + 1 < hotel_max_tries:
                return repeat("tryAgain")
            return outcome("failed")
        if ctx.repeats < hotel_attempts_needed:
            if ctx.repeats + 1 >= hotel_max_tries:
                return outcome("failed")
            return repeat("tryAgain")
        return outcome("booked", hotel=f"hotel(after {ctx.repeats} retries)")

    @reg.implementation("refFlightCancellation")
    def flight_cancellation(ctx):
        return outcome("cancelled")

    @reg.implementation("refPrintTickets")
    def print_tickets(ctx):
        return outcome(
            "printed", tickets=f"tickets[{ctx.value('plane')},{ctx.value('hotel')}]"
        )

    return reg
