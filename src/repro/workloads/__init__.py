"""Workload builders (DESIGN.md subsystem S9): the paper's three example
applications as ready-to-run scripts, plus parameterised synthetic DAGs for
the scalability and baseline benchmarks.
"""

from . import paper_order, paper_service_impact, paper_trip
from .generators import Workload, chain, diamond, fan, random_dag, script_text

__all__ = [
    "Workload",
    "chain",
    "diamond",
    "fan",
    "paper_order",
    "paper_service_impact",
    "paper_trip",
    "random_dag",
    "script_text",
]
