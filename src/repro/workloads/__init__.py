"""Workload builders (DESIGN.md subsystem S9): the paper's three example
applications as ready-to-run scripts, plus parameterised synthetic DAGs for
the scalability and baseline benchmarks.
"""

from . import paper_order, paper_service_impact, paper_trip
from .generators import Workload, chain, diamond, fan, random_dag, script_text
from .traffic import (
    Arrival,
    SLOReport,
    TrafficSpec,
    arrival_schedule,
    cohort_script,
    run_traffic,
    traffic_registry,
)

__all__ = [
    "Arrival",
    "SLOReport",
    "TrafficSpec",
    "Workload",
    "arrival_schedule",
    "chain",
    "cohort_script",
    "diamond",
    "fan",
    "paper_order",
    "paper_service_impact",
    "paper_trip",
    "random_dag",
    "run_traffic",
    "script_text",
    "traffic_registry",
]
