"""Deterministic sustained-traffic generator (docs/PROTOCOLS.md §13).

Drives a :class:`~repro.services.system.WorkflowSystem` with a precomputed
arrival schedule — Poisson or bursty inter-arrivals, user cohorts carrying
different criticality classes, hot-key input skew — and reports the SLO
view: goodput, sojourn percentiles, shed/refusal counts by class.

Everything is derived from ``TrafficSpec.seed`` **before** the simulation
runs: the whole arrival schedule (times, cohorts, keys) is materialised up
front with one ``random.Random(seed)``, so the same spec always produces
the same schedule regardless of how the simulation interleaves, and the
report's canonical fingerprint is byte-stable.  Clients submit through
:func:`~repro.orb.call_with_backoff`: an ``Overloaded`` refusal is retried
cooperatively (never before the service's retry-after hint, jittered so
refused clients do not return as one wave), and a client out of patience
counts as *refused* — turned away at the edge, the correct outcome under
sustained overload.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.builder import ScriptBuilder, from_input, from_output
from ..core.schema import Script
from ..engine import ImplementationRegistry
from ..lang import format_script
from ..orb import CommFailure, Overloaded, call_with_backoff
from ..resilience import RetryPolicy
from .generators import _noop_registry

# Cohort index -> criticality class, cycling.  Cohort 0 is the premium tier:
# its work is the last to be shed.
COHORT_CRITICALITY = ("high", "normal", "low")


@dataclass(frozen=True)
class TrafficSpec:
    """One reproducible traffic scenario."""

    arrival: str = "poisson"     # "poisson" | "burst"
    rate: float = 0.5            # mean arrivals per virtual second (off-burst)
    duration: float = 300.0      # arrival-generation horizon
    cohorts: int = 3             # user cohorts, cycling high/normal/low
    skew: float = 0.5            # probability an arrival touches the hot key
    seed: int = 0
    script_length: int = 3       # pipeline stages per instance
    burst_factor: float = 8.0    # burst mode: peak rate multiplier
    burst_period: float = 60.0   # burst mode: cycle length
    burst_duty: float = 0.25     # burst mode: fraction of the cycle at peak
    drain: float = 600.0         # extra time to let admitted work finish
    max_attempts: int = 4        # client patience with Overloaded refusals
    slo: float = 0.0             # goodput latency bound; 0 = raw completions

    def __post_init__(self) -> None:
        if self.arrival not in ("poisson", "burst"):
            raise ValueError("arrival must be 'poisson' or 'burst'")
        if self.rate <= 0 or self.duration <= 0:
            raise ValueError("rate and duration must be positive")
        if self.cohorts < 1:
            raise ValueError("cohorts must be >= 1")
        if not 0.0 <= self.skew <= 1.0:
            raise ValueError("skew must be in [0, 1]")
        if not 0.0 < self.burst_duty < 1.0:
            raise ValueError("burst_duty must be in (0, 1)")


@dataclass(frozen=True)
class Arrival:
    """One scheduled submission."""

    number: int
    at: float
    cohort: int
    criticality: str
    key: str          # input payload; "hot" under skew


def cohort_script(cohort: int, length: int) -> Tuple[Script, str]:
    """The pipeline script one cohort submits, with its criticality class
    declared as a root-task implementation property — the script *is* the
    priority declaration, exactly like ``location`` pins placement (§4.3)."""
    criticality = COHORT_CRITICALITY[cohort % len(COHORT_CRITICALITY)]
    b = ScriptBuilder()
    b.object_class("Data")
    b.taskclass("Stage").input_set("main", inp="Data").outcome("done", out="Data")
    b.taskclass("Root").input_set("main", inp="Data").outcome("done", out="Data")
    root_name = f"job{cohort}"
    root = b.compound(root_name, "Root").implementation(criticality=criticality)
    source = from_input(root_name, "main", "inp")
    for index in range(length):
        name = f"t{index + 1}"
        root.task(name, "Stage").implementation(code="stage").input(
            "main", "inp", source
        ).up()
        source = from_output(name, "done", "out")
    root.output("done").object("out", source).up()
    root.up()
    return b.build(), root_name


def traffic_registry() -> ImplementationRegistry:
    """Registry the workers need for cohort scripts."""
    return _noop_registry(["stage"])


def arrival_schedule(spec: TrafficSpec) -> List[Arrival]:
    """The full arrival schedule, materialised deterministically up front."""
    import random

    rng = random.Random(spec.seed)
    arrivals: List[Arrival] = []
    t = 0.0
    number = 0
    while True:
        if spec.arrival == "poisson":
            current_rate = spec.rate
        else:
            phase = (t % spec.burst_period) / spec.burst_period
            current_rate = (
                spec.rate * spec.burst_factor if phase < spec.burst_duty else spec.rate
            )
        t += rng.expovariate(current_rate)
        if t >= spec.duration:
            break
        number += 1
        cohort = 0 if rng.random() < spec.skew else rng.randrange(spec.cohorts)
        key = "hot" if rng.random() < spec.skew else f"k{rng.randrange(100)}"
        arrivals.append(
            Arrival(
                number=number,
                at=t,
                cohort=cohort,
                criticality=COHORT_CRITICALITY[cohort % len(COHORT_CRITICALITY)],
                key=key,
            )
        )
    return arrivals


@dataclass
class SLOReport:
    """What the traffic run measured, with a canonical fingerprint."""

    spec: Dict[str, Any]
    offered: int = 0
    admitted: int = 0
    completed: int = 0
    shed: int = 0          # journaled decisive ``overloaded`` outcomes
    refused: int = 0       # clients out of patience with Overloaded refusals
    failed: int = 0        # other terminal failures/aborts
    unfinished: int = 0    # still non-terminal when the run ended
    lost: int = 0          # submissions that hit a non-overload CommFailure
    goodput: float = 0.0   # completions per virtual second of the horizon
    # completions whose end-to-end sojourn met ``spec.slo`` — the honest
    # measure under overload, where a completion hours late is not "good"
    slo_completed: int = 0
    slo_goodput: float = 0.0
    p50_sojourn: float = 0.0
    p99_sojourn: float = 0.0
    max_sojourn: float = 0.0
    by_class: Dict[str, Dict[str, int]] = field(default_factory=dict)
    overload: Dict[str, Any] = field(default_factory=dict)

    def to_plain(self) -> Dict[str, Any]:
        return {
            "spec": self.spec,
            "offered": self.offered,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": self.shed,
            "refused": self.refused,
            "failed": self.failed,
            "unfinished": self.unfinished,
            "lost": self.lost,
            "goodput": round(self.goodput, 6),
            "slo_completed": self.slo_completed,
            "slo_goodput": round(self.slo_goodput, 6),
            "p50_sojourn": round(self.p50_sojourn, 3),
            "p99_sojourn": round(self.p99_sojourn, 3),
            "max_sojourn": round(self.max_sojourn, 3),
            "by_class": self.by_class,
            "overload": self.overload,
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON form: same seed, same bytes."""
        canonical = json.dumps(self.to_plain(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def render(self) -> str:
        lines = [
            "-- traffic SLO report --",
            f"offered {self.offered}  admitted {self.admitted}  "
            f"completed {self.completed}  shed {self.shed}  "
            f"refused {self.refused}  failed {self.failed}  "
            f"unfinished {self.unfinished}  lost {self.lost}",
            f"goodput {self.goodput:.3f}/s (slo {self.slo_goodput:.3f}/s)   "
            f"sojourn p50 {self.p50_sojourn:.1f} "
            f"p99 {self.p99_sojourn:.1f} max {self.max_sojourn:.1f}",
        ]
        for criticality in sorted(self.by_class):
            row = self.by_class[criticality]
            lines.append(
                f"  {criticality:<7} offered {row['offered']:>4}  "
                f"completed {row['completed']:>4}  shed {row['shed']:>4}"
            )
        if self.overload:
            lines.append(
                f"admission: window {self.overload.get('window')}  "
                f"pressure {self.overload.get('pressure')}  "
                f"rejected {self.overload.get('rejected')}  "
                f"promoted {self.overload.get('promoted')}"
            )
        lines.append(f"fingerprint {self.fingerprint()[:16]}")
        return "\n".join(lines)


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
    return ordered[index]


def run_traffic(
    system: Any,
    spec: TrafficSpec,
    poll_every: float = 5.0,
    policy: Optional[RetryPolicy] = None,
) -> SLOReport:
    """Run one traffic scenario against a built WorkflowSystem.

    Deploys one script per cohort, schedules every arrival on the event
    clock, drives the clock until the horizon passes and admitted work
    drains, then assembles the SLO report.  Submissions go through the ORB
    like any client's would; cohort scripts resolve the ``stage`` code, so
    build the system with :func:`traffic_registry`.
    """
    clock = system.clock
    policy = policy or RetryPolicy(seed=spec.seed)
    arrivals = arrival_schedule(spec)

    script_names: List[str] = []
    roots: List[str] = []
    for cohort in range(spec.cohorts):
        script, root_name = cohort_script(cohort, spec.script_length)
        name = f"traffic-c{cohort}"
        system.deploy(name, format_script(script))
        script_names.append(name)
        roots.append(root_name)

    proxy = system.execution_proxy()
    base = clock.now
    # submission tracking: iid -> (arrival, submitted_at)
    live: Dict[str, Tuple[Arrival, float]] = {}
    done: Dict[str, Tuple[Arrival, float, float, str]] = {}  # + finished_at, fate
    counters = {"refused": 0, "lost": 0}
    by_class: Dict[str, Dict[str, int]] = {
        criticality: {"offered": 0, "completed": 0, "shed": 0}
        for criticality in COHORT_CRITICALITY[: min(spec.cohorts, 3)]
    }

    def submit(arrival: Arrival) -> None:
        def invoke() -> Optional[str]:
            try:
                return proxy.instantiate(
                    script_names[arrival.cohort],
                    roots[arrival.cohort],
                    "main",
                    {"inp": arrival.key},
                )
            except Overloaded:
                raise  # cooperative backoff handles this one
            except CommFailure:
                return None  # an outage ate the submission: counted as lost

        def on_result(iid: Optional[str]) -> None:
            if iid is None:
                counters["lost"] += 1
            else:
                live[iid] = (arrival, clock.now)

        def on_give_up(_exc: Exception) -> None:
            counters["refused"] += 1

        call_with_backoff(
            clock,
            policy,
            key=f"arrival-{arrival.number}",
            call=invoke,
            on_result=on_result,
            on_give_up=on_give_up,
            max_attempts=spec.max_attempts,
        )

    for arrival in arrivals:
        by_class.setdefault(
            arrival.criticality, {"offered": 0, "completed": 0, "shed": 0}
        )
        by_class[arrival.criticality]["offered"] += 1
        clock.call_after(
            max(base + arrival.at - clock.now, 0.0),
            lambda a=arrival: submit(a),
            label=f"traffic:{arrival.number}",
        )

    horizon = base + spec.duration + spec.drain
    terminal = ("completed", "aborted", "failed")
    while clock.now < horizon:
        clock.advance(poll_every)
        service = system.primary_execution()
        if service is None:
            continue
        for iid in list(live):
            runtime = service.runtimes.get(iid)
            if runtime is None:
                continue
            status = runtime.tree.status.value
            if status not in terminal:
                continue
            arrival, submitted_at = live.pop(iid)
            error = runtime.tree.error or ""
            if status == "completed":
                fate = "completed"
            elif error.startswith("overloaded"):
                fate = "shed"
            else:
                fate = "failed"
            done[iid] = (arrival, submitted_at, clock.now, fate)
        if clock.now >= base + spec.duration and not live:
            break  # horizon passed and everything admitted has settled

    sojourns: List[float] = []
    report = SLOReport(spec=dict(spec.__dict__))
    report.offered = len(arrivals)
    report.refused = counters["refused"]
    report.lost = counters["lost"]
    report.unfinished = len(live)
    report.admitted = len(live) + len(done)
    for arrival, submitted_at, finished_at, fate in done.values():
        if fate == "completed":
            report.completed += 1
            by_class[arrival.criticality]["completed"] += 1
            sojourn = finished_at - (base + arrival.at)
            sojourns.append(sojourn)
            if spec.slo <= 0 or sojourn <= spec.slo:
                report.slo_completed += 1
        elif fate == "shed":
            report.shed += 1
            by_class[arrival.criticality]["shed"] += 1
        else:
            report.failed += 1
    report.goodput = report.completed / spec.duration
    report.slo_goodput = report.slo_completed / spec.duration
    report.p50_sojourn = _percentile(sojourns, 0.50)
    report.p99_sojourn = _percentile(sojourns, 0.99)
    report.max_sojourn = max(sojourns) if sojourns else 0.0
    report.by_class = by_class
    service = system.primary_execution()
    if service is not None:
        report.overload = service.admission.report()
    return report
