"""§5.1 / Fig. 6 — the network-management service impact application.

The compound task and its classes follow the paper's listing verbatim
(including the *unguarded* source ``serviceImpactReports of task
serviceImpactAnalysis``, which exercises the "any outcome carrying that
object" rule).  The constituent task classes, which the paper elides, are
reconstructed from the outcome names its output mapping references.
"""

from __future__ import annotations

from typing import Optional

from ..core.schema import Script
from ..engine import ImplementationRegistry, outcome
from ..lang import compile_script

SCRIPT_TEXT = """
class AlarmsSource;
class FaultReport;
class ServiceImpactReports;
class ResolutionReport;

taskclass ServiceImpactApplication
{
    inputs { input main { alarmsSource of class AlarmsSource } };
    outputs
    {
        outcome resolved { resolutionReport of class ResolutionReport };
        outcome notResolved { };
        outcome serviceImpactApplicationFailure { }
    }
};

taskclass AlarmCorrelator
{
    inputs { input main { alarmSource of class AlarmsSource } };
    outputs
    {
        outcome foundFault { faultReport of class FaultReport };
        outcome alarmCorrelatorFailure { }
    }
};

taskclass ServiceImpactAnalysis
{
    inputs { input main { faultReport of class FaultReport } };
    outputs
    {
        outcome impactAssessed { serviceImpactReports of class ServiceImpactReports };
        outcome serviceImpactAnalysisFailure { }
    }
};

taskclass ServiceImpactResolution
{
    inputs { input main { serviceImpactReports of class ServiceImpactReports } };
    outputs
    {
        outcome foundResolution { resolutionReport of class ResolutionReport };
        outcome foundNoResolution { };
        outcome serviceImpactResolutionFailure { }
    }
};

compoundtask serviceImpactApplication of taskclass ServiceImpactApplication
{
    task alarmCorrelator of taskclass AlarmCorrelator
    {
        implementation { "code" is "refAlarmCorrelator" };
        inputs
        {
            input main
            {
                inputobject alarmSource from
                {
                    alarmsSource of task serviceImpactApplication if input main
                }
            }
        }
    };
    task serviceImpactAnalysis of taskclass ServiceImpactAnalysis
    {
        implementation { "code" is "refServiceImpactAnalysis" };
        inputs
        {
            input main
            {
                inputobject faultReport from
                {
                    faultReport of task alarmCorrelator if output foundFault
                }
            }
        }
    };
    task serviceImpactResolution of taskclass ServiceImpactResolution
    {
        implementation { "code" is "refServiceImpactResolution" };
        inputs
        {
            input main
            {
                inputobject serviceImpactReports from
                {
                    serviceImpactReports of task serviceImpactAnalysis
                }
            }
        }
    };
    outputs
    {
        outcome resolved
        {
            outputobject resolutionReport from
            {
                resolutionReport of task serviceImpactResolution if output foundResolution
            }
        };
        outcome notResolved
        {
            notification from
            {
                task serviceImpactResolution if output foundNoResolution
            }
        };
        outcome serviceImpactApplicationFailure
        {
            notification from
            {
                task alarmCorrelator if output alarmCorrelatorFailure;
                task serviceImpactAnalysis if output serviceImpactAnalysisFailure;
                task serviceImpactResolution if output serviceImpactResolutionFailure
            }
        }
    }
};
"""

ROOT_TASK = "serviceImpactApplication"


def build() -> Script:
    return compile_script(SCRIPT_TEXT)


def default_registry(
    fault: str = "link-loss",
    resolvable: bool = True,
    fail_stage: Optional[str] = None,
    registry: Optional[ImplementationRegistry] = None,
) -> ImplementationRegistry:
    """Implementations for the three constituents.

    ``fail_stage`` may be one of ``"correlate"``, ``"analyse"``, ``"resolve"``
    to drive the application into its ``serviceImpactApplicationFailure``
    outcome through the corresponding task.
    """
    reg = registry or ImplementationRegistry()

    @reg.implementation("refAlarmCorrelator")
    def alarm_correlator(ctx):
        if fail_stage == "correlate":
            return outcome("alarmCorrelatorFailure")
        alarms = ctx.value("alarmSource")
        return outcome("foundFault", faultReport=f"fault:{fault}@{alarms}")

    @reg.implementation("refServiceImpactAnalysis")
    def service_impact_analysis(ctx):
        if fail_stage == "analyse":
            return outcome("serviceImpactAnalysisFailure")
        return outcome(
            "impactAssessed",
            serviceImpactReports=f"impacted-services({ctx.value('faultReport')})",
        )

    @reg.implementation("refServiceImpactResolution")
    def service_impact_resolution(ctx):
        if fail_stage == "resolve":
            return outcome("serviceImpactResolutionFailure")
        if resolvable:
            return outcome(
                "foundResolution",
                resolutionReport=f"rerouted({ctx.value('serviceImpactReports')})",
            )
        return outcome("foundNoResolution")

    return reg
