"""F8 — Fig. 8 / §5.3: the tripReservation compound.

Regenerates the top level of the business-trip application: the looping
businessReservation (BR) constituent, printTickets gated on BR success, and
the `mark toPay` output releasing the cost early.  Sweeps the number of BR
retry rounds and measures how work grows with them.
"""

from repro.core.selection import EventKind
from repro.engine import LocalEngine
from repro.workloads import paper_trip

from .conftest import report


def test_fig8_structure(benchmark):
    script = benchmark.pedantic(paper_trip.build, rounds=3, iterations=1)
    trip = script.tasks[paper_trip.ROOT_TASK]
    assert {t.name for t in trip.tasks} == {"businessReservation", "printTickets"}
    outputs = {b.name for b in trip.outputs}
    assert outputs == {"tripArranged", "tripFailed", "toPay"}


def test_fig8_happy_path_cost(benchmark):
    script = paper_trip.build()
    registry_factory = lambda: paper_trip.default_registry()

    def run():
        return LocalEngine(registry_factory()).run(script, inputs={"user": "alice"})

    result = benchmark(run)
    assert result.outcome == "tripArranged"
    assert [name for name, _ in result.marks] == ["toPay"]


def test_fig8_mark_released_before_completion(benchmark):
    script = paper_trip.build()

    def run():
        return LocalEngine(paper_trip.default_registry()).run(
            script, inputs={"user": "alice"}
        )

    result = benchmark(run)
    mark_entry = next(
        e for e in result.log.entries
        if e.producer_path == "tripReservation" and e.event.kind is EventKind.MARK
    )
    done_entry = next(
        e for e in result.log.entries
        if e.producer_path == "tripReservation" and e.event.kind is EventKind.OUTCOME
    )
    assert mark_entry.seq < done_entry.seq  # early release, as drawn


def test_fig8_retry_round_sweep(benchmark):
    """Work grows linearly with BR retry rounds (the Fig. 8 loop)."""
    script = paper_trip.build()

    def run_rounds(rounds: int):
        registry = paper_trip.default_registry(
            hotel_rounds_until_success=rounds,
            hotel_attempts_needed=1,
            hotel_max_tries=3,
        )
        return LocalEngine(registry).run(script, inputs={"user": "bob"})

    rows = []
    for rounds in (1, 2, 3, 4):
        result = run_rounds(rounds)
        assert result.outcome == "tripArranged"
        br_repeats = sum(
            1
            for e in result.log.for_task("tripReservation/businessReservation")
            if e.event.kind is EventKind.REPEAT
        )
        assert br_repeats == rounds - 1
        rows.append((rounds, br_repeats, result.stats["steps"], result.stats["events"]))
    report(
        "F8: BR loop rounds sweep",
        ["rounds", "BR repeats", "tasks run", "events"],
        rows,
    )
    steps = [r[2] for r in rows]
    assert steps[0] < steps[1] < steps[2] < steps[3]

    benchmark(lambda: run_rounds(2))
