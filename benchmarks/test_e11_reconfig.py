"""E11 — §3 dynamic reconfiguration claim.

The paper's own scenario: "assume that it is necessary to add another task t5
with dependencies from t2 and t4" to the *running* Fig. 1 workflow, with
transactions making the change atomic with respect to normal processing.

We verify atomicity (an invalid change leaves the running instance
untouched), then measure reconfiguration cost against workflow size.
"""

import pytest

from repro.core import (
    AddTask,
    Implementation,
    ReconfigurationError,
    ReplaceOutputMapping,
    apply_changes,
)
from repro.core.schema import (
    GuardKind,
    InputObjectBinding,
    InputSetBinding,
    OutputBinding,
    OutputObjectBinding,
    Source,
    TaskDecl,
)
from repro.engine import LocalEngine, outcome
from repro.workloads import chain, diamond

from .conftest import report


def t5_and_rewire(script):
    t5 = TaskDecl(
        "t5",
        "Join",
        Implementation.of(code="join"),
        (
            InputSetBinding(
                "main",
                (
                    InputObjectBinding(
                        "left", (Source("t2", "out", GuardKind.OUTPUT, "done"),)
                    ),
                    InputObjectBinding(
                        "right", (Source("t4", "out", GuardKind.OUTPUT, "done"),)
                    ),
                ),
            ),
        ),
    )
    rewire = ReplaceOutputMapping(
        "fig1",
        OutputBinding(
            "done",
            (
                OutputObjectBinding(
                    "out", (Source("t5", "out", GuardKind.OUTPUT, "done"),)
                ),
            ),
        ),
    )
    return apply_changes(script, [AddTask("fig1", t5), rewire])


def test_e11_paper_scenario_add_t5(benchmark):
    def run():
        script, registry, root, inputs = diamond()
        wf = LocalEngine(registry).workflow(script)
        wf.start(inputs)
        wf.step()  # running
        wf.reconfigure(t5_and_rewire(wf.tree.script))
        return wf.run_to_completion()

    result = benchmark(run)
    assert result.completed
    assert "fig1/t5" in result.log.started_order()


def test_e11_atomicity_invalid_change_has_no_effect(benchmark):
    script, registry, root, inputs = diamond()
    wf = LocalEngine(registry).workflow(script)
    wf.start(inputs)
    wf.step()
    import dataclasses

    broken = dataclasses.replace(
        script.tasks["fig1"].task("t1"), taskclass_name="Join"
    )
    bad_tasks = tuple(
        broken if t.name == "t1" else t for t in script.tasks["fig1"].tasks
    )
    from repro.core.schema import Script

    bad_script = Script(
        classes=dict(script.classes),
        taskclasses=dict(script.taskclasses),
        tasks={"fig1": dataclasses.replace(script.tasks["fig1"], tasks=bad_tasks)},
    )
    before = wf.tree.script
    with pytest.raises(ReconfigurationError):
        wf.reconfigure(bad_script)
    assert wf.tree.script is before  # nothing changed
    assert wf.run_to_completion().completed  # and the instance still finishes

    def rejected_change():
        script2, registry2, root2, inputs2 = diamond()
        live = LocalEngine(registry2).workflow(script2)
        live.start(inputs2)
        try:
            live.reconfigure(bad_script)
        except ReconfigurationError:
            return True
        return False

    assert benchmark(rejected_change)


def test_e11_reconfiguration_cost_vs_size(benchmark):
    """Schema-rebuild plus tracker-replay cost as the workflow grows."""
    from repro.core import AddDependency

    rows = []
    for n in (10, 50, 200):
        script, registry, root, inputs = chain(n)
        wf = LocalEngine(registry).workflow(script)
        wf.start(inputs)
        for _ in range(3):
            wf.step()
        change = AddDependency(
            f"pipeline/t{n}",
            "main",
            None,
            (Source("t1", None, GuardKind.OUTPUT, "done"),),
        )
        import time

        begin = time.perf_counter()
        wf.reconfigure(change.apply_checked(wf.tree.script))
        micros = (time.perf_counter() - begin) * 1e6
        result = wf.run_to_completion()
        assert result.completed
        rows.append((n, f"{micros:.0f}us"))
    report("E11: live reconfiguration cost vs workflow size", ["tasks", "cost"], rows)

    script, registry, root, inputs = chain(50)

    def reconfigure_once():
        wf = LocalEngine(registry).workflow(script)
        wf.start(inputs)
        wf.step()
        from repro.core import AddDependency

        change = AddDependency(
            "pipeline/t50",
            "main",
            None,
            (Source("t1", None, GuardKind.OUTPUT, "done"),),
        )
        wf.reconfigure(change.apply_checked(wf.tree.script))
        return wf.run_to_completion()

    result = benchmark(reconfigure_once)
    assert result.completed
