"""Failover benchmark: unavailability window and throughput dip when the
execution service's machine dies mid-fleet (docs/PROTOCOLS.md §12).

Three runs of the same 8-instance order fleet, all on the simulated clock:

* **baseline** — replicated system, no faults: the fleet's natural makespan.
* **hot standby** — the primary's node is killed at t=10s and *never comes
  back*.  A warm standby detects lease expiry, promotes under a fresh
  fencing epoch and finishes the fleet.  The unavailability window is
  ``promoted_at - kill_at`` and is bounded by the lease: detection can take
  at most ``lease_duration`` plus one acquire poll — it does not depend on
  the dead node ever returning.
* **cold restart** — no standby: the fleet stalls until the node is
  restarted (MTTR stand-in of 120s) and single-node recovery replays.

Asserts the hot window stays under the lease-derived bound and beats the
cold restart on both window and makespan, then writes the table to
``BENCH_failover.json`` (override the path with ``BENCH_FAILOVER``).
"""

import json
import os
import time

from repro.services import WorkflowSystem
from repro.workloads import paper_order

from .conftest import report

FLEET = 8
KILL_AT = 10.0
LEASE = 30.0
REPL_INTERVAL = 5.0
COLD_MTTR = 120.0  # operator restart time for the no-standby baseline
STEP = 2.5  # completion-time resolution of the polling loop
TERMINAL = ("completed", "aborted")


def run_fleet(*, replicas, kill_at=None, downtime=None, max_time=4_000.0):
    """Run the order fleet; returns per-instance completion sim-times plus
    the system and wall-clock cost of driving it."""
    kwargs = {"workers": 2, "seed": 0}
    if replicas:
        kwargs.update(
            replicas=replicas, lease_duration=LEASE, repl_interval=REPL_INTERVAL
        )
    system = WorkflowSystem(**kwargs)
    paper_order.default_registry(registry=system.registry)
    system.deploy("order", paper_order.SCRIPT_TEXT)
    iids = [
        system.instantiate("order", paper_order.ROOT_TASK, {"order": f"o-{i}"})
        for i in range(FLEET)
    ]
    if kill_at is not None:
        system.clock.call_at(kill_at, system.execution_node.crash)
        if downtime is not None:
            system.clock.call_at(kill_at + downtime, system.execution_node.recover)
    done = {}
    begin = time.perf_counter()
    while len(done) < len(iids) and system.clock.now < max_time:
        system.clock.advance(STEP)
        service = system.primary_execution()
        if service is None:
            continue  # down / failing over: keep time moving
        for iid in iids:
            if iid in done:
                continue
            runtime = service.runtimes.get(iid)
            if runtime is not None and runtime.tree.status.value in TERMINAL:
                done[iid] = system.clock.now
    wall = time.perf_counter() - begin
    assert len(done) == len(iids), f"fleet incomplete: {len(done)}/{len(iids)}"
    return done, system, wall


def throughput_buckets(completions, width=25.0):
    """Completions per ``width``-second bucket — the dip made visible."""
    end = max(completions.values())
    buckets = []
    t = 0.0
    while t < end:
        n = sum(1 for c in completions.values() if t < c <= t + width)
        buckets.append({"from_s": t, "to_s": t + width, "completed": n})
        t += width
    return buckets


def test_failover_window_and_report():
    base_done, _, base_wall = run_fleet(replicas=2)
    hot_done, hot_system, hot_wall = run_fleet(
        replicas=2, kill_at=KILL_AT, downtime=None
    )
    cold_done, _, cold_wall = run_fleet(
        replicas=0, kill_at=KILL_AT, downtime=COLD_MTTR
    )

    primary = hot_system.primary_execution()
    assert primary is not hot_system.execution_replicas[0]  # a standby took over
    assert primary.repl_stats["promotions"] == 1
    promoted_at = primary.repl_stats["promoted_at"]
    hot_window = promoted_at - KILL_AT
    # no completion can land strictly inside the window — the dip is real
    # (a poll tick may coincide with the promotion instant itself)
    assert not any(KILL_AT < c < promoted_at for c in hot_done.values())
    cold_window = min(c for c in cold_done.values() if c > KILL_AT) - KILL_AT

    base_makespan = max(base_done.values())
    hot_makespan = max(hot_done.values())
    cold_makespan = max(cold_done.values())

    # the headline claims: the window is bounded by the lease (plus one
    # acquire poll and the sampling step), independent of the dead node's
    # fate, and beats waiting out a cold restart
    bound = LEASE + 2 * REPL_INTERVAL + 2 * STEP
    assert hot_window <= bound, (hot_window, bound)
    assert hot_window < cold_window
    assert hot_makespan < cold_makespan

    rows = [
        ("baseline (no fault)", "-", "-", f"{base_makespan:.0f}", f"{base_wall:.2f}"),
        (
            "hot standby (node never returns)",
            f"{hot_window:.1f}",
            f"{promoted_at:.1f}",
            f"{hot_makespan:.0f}",
            f"{hot_wall:.2f}",
        ),
        (
            f"cold restart (MTTR {COLD_MTTR:.0f}s)",
            f"{cold_window:.1f}",
            "-",
            f"{cold_makespan:.0f}",
            f"{cold_wall:.2f}",
        ),
    ]
    report(
        f"failover: {FLEET}-instance order fleet, primary killed at t={KILL_AT:.0f}s",
        ["mode", "window s", "promoted at", "makespan s", "wall s"],
        rows,
    )

    payload = {
        "fleet": FLEET,
        "kill_at_s": KILL_AT,
        "lease_duration_s": LEASE,
        "repl_interval_s": REPL_INTERVAL,
        "window_bound_s": bound,
        "baseline": {"makespan_s": base_makespan},
        "hot_standby": {
            "unavailability_window_s": round(hot_window, 2),
            "promoted_at_s": round(promoted_at, 2),
            "makespan_s": hot_makespan,
            "fencing_epoch": primary.epoch,
            "throughput": throughput_buckets(hot_done),
        },
        "cold_restart": {
            "mttr_s": COLD_MTTR,
            "unavailability_window_s": round(cold_window, 2),
            "makespan_s": cold_makespan,
        },
        "window_speedup": round(cold_window / hot_window, 2),
    }
    out = os.environ.get("BENCH_FAILOVER", "BENCH_failover.json")
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"   wrote {out}: window {hot_window:.1f}s (bound {bound:.1f}s), "
          f"{payload['window_speedup']}x tighter than cold restart")
