"""F3 — Fig. 3: task state transitions.

Regenerates the figure's transition system — wait, execute, marks, repeats,
named outcomes, abort outcomes — walks every legal path, asserts every
*illegal* transition the figure omits is refused, and measures transition
throughput.
"""

import pytest

from repro.core.schema import ObjectDecl, OutputKind, OutputSpec, TaskClass
from repro.core.states import IllegalTransition, TaskState, TaskStateMachine

from .conftest import report

FIG3_CLASS = TaskClass(
    "Fig3Task",
    outputs=(
        OutputSpec("Outcome1", OutputKind.OUTCOME, (ObjectDecl("r", "Data"),)),
        OutputSpec("Mark1", OutputKind.MARK),
        OutputSpec("Mark2", OutputKind.MARK),
        OutputSpec("Repeat1", OutputKind.REPEAT),
    ),
)

ATOMIC_CLASS = TaskClass(
    "Fig3Atomic",
    outputs=(
        OutputSpec("Outcome1", OutputKind.OUTCOME),
        OutputSpec("Abort1", OutputKind.ABORT),
        OutputSpec("Abort2", OutputKind.ABORT),
        OutputSpec("Abort3", OutputKind.ABORT),
    ),
)


def test_fig3_every_legal_path(benchmark):
    # wait -> abort (timer / forced)
    m = TaskStateMachine("t", ATOMIC_CLASS)
    m.abort("Abort2")
    assert m.state is TaskState.ABORTED

    # wait -> execute -> marks -> repeat -> execute -> outcome
    m = TaskStateMachine("t", FIG3_CLASS)
    m.start()
    m.mark("Mark1")
    m.mark("Mark2")
    m.repeat("Repeat1")
    m.start()
    m.complete("Outcome1")
    assert m.state is TaskState.COMPLETED
    assert m.repeats == 1 and m.starts == 2

    # atomic: execute -> abort -> automatic retry -> commit
    m = TaskStateMachine("t", ATOMIC_CLASS)
    m.start()
    m.abort("Abort1")
    m.reset_for_retry()
    m.start()
    m.complete("Outcome1")
    assert m.state is TaskState.COMPLETED

    def retry_cycle():
        sm = TaskStateMachine("t", ATOMIC_CLASS)
        sm.start()
        sm.abort("Abort1")
        sm.reset_for_retry()
        sm.start()
        sm.complete("Outcome1")
        return sm

    assert benchmark(retry_cycle).terminal


def test_fig3_illegal_transitions_refused(benchmark):
    m = TaskStateMachine("t", FIG3_CLASS)
    with pytest.raises(IllegalTransition):
        m.complete("Outcome1")          # complete from WAIT
    m.start()
    with pytest.raises(IllegalTransition):
        m.start()                        # double start
    m.mark("Mark1")
    with pytest.raises(IllegalTransition):
        m.system_retry()                 # silent retry after a mark
    m.complete("Outcome1")
    with pytest.raises(IllegalTransition):
        m.mark("Mark2")                  # mark after termination

    def refused_start():
        sm = TaskStateMachine("t", FIG3_CLASS)
        sm.start()
        try:
            sm.start()
        except IllegalTransition:
            return True
        return False

    assert benchmark(refused_start)


def test_fig3_atomic_class_cannot_have_marks(benchmark):
    with pytest.raises(Exception):
        TaskClass(
            "Bad",
            outputs=(
                OutputSpec("Abort1", OutputKind.ABORT),
                OutputSpec("Mark1", OutputKind.MARK),
            ),
        )

    def build_valid_atomic():
        return TaskClass(
            "Good", outputs=(OutputSpec("Abort1", OutputKind.ABORT),)
        )

    assert benchmark(build_valid_atomic).is_atomic


def test_fig3_transition_throughput(benchmark):
    def full_cycle():
        m = TaskStateMachine("t", FIG3_CLASS)
        m.start()
        m.mark("Mark1")
        m.repeat("Repeat1")
        m.start()
        m.complete("Outcome1")
        return m

    m = benchmark(full_cycle)
    assert m.terminal
    report(
        "F3: Fig. 3 transitions",
        ["path", "transitions"],
        [("wait->exec->mark->repeat->exec->outcome", len(m.history))],
    )


def test_fig3_snapshot_restore_cost(benchmark):
    m = TaskStateMachine("t", FIG3_CLASS)
    m.start()
    m.mark("Mark1")

    def roundtrip():
        snap = m.snapshot()
        m2 = TaskStateMachine("t", FIG3_CLASS)
        m2.restore(snap)
        return m2

    m2 = benchmark(roundtrip)
    assert m2.state is TaskState.EXECUTING and m2.marked
