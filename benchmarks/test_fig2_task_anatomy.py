"""F2 — Fig. 2: task anatomy (input sets, alternative sources, outcomes).

Regenerates the figure's task shape — two input sets with typed object
references and two named outcomes — and measures the cost of the two
selection rules the figure's prose defines: deterministic choice among
satisfied input sets, and first-available choice among alternative sources.
"""

from repro.core import ScriptBuilder, from_output
from repro.core.schema import (
    GuardKind,
    InputObjectBinding,
    InputSetBinding,
    Source,
)
from repro.core.selection import EventKind, TaskInputTracker, WorkflowEvent
from repro.core.values import ObjectRef

from .conftest import report


def fig2_taskclass():
    b = ScriptBuilder()
    b.object_classes("C1", "C2", "C3", "O1", "O2", "O3")
    (
        b.taskclass("Task")
        .input_set("inputSet1", inputObject1="C1", inputObject2="C2")
        .input_set("inputSet2", inputObject3="C3")
        .outcome("outcome1", outputObject1="O1")
        .outcome("outcome2", outputObject2="O2", outputObject3="O3")
    )
    return b.build(validate=False).taskclasses["Task"]


def event(producer, name, **objects):
    return WorkflowEvent(
        producer,
        EventKind.OUTCOME,
        name,
        {k: ObjectRef("Data", v) for k, v in objects.items()},
    )


def test_fig2_shape_and_set_selection(benchmark):
    taskclass = fig2_taskclass()
    assert [s.name for s in taskclass.input_sets] == ["inputSet1", "inputSet2"]
    assert len(taskclass.input_set("inputSet1").objects) == 2
    assert len(taskclass.input_set("inputSet2").objects) == 1
    assert len(taskclass.output("outcome1").objects) == 1
    assert len(taskclass.output("outcome2").objects) == 2

    # both sets satisfiable; the first declared must win deterministically
    set1 = InputSetBinding(
        "inputSet1",
        (
            InputObjectBinding("inputObject1", (Source("p", "a", GuardKind.OUTPUT, "done"),)),
            InputObjectBinding("inputObject2", (Source("p", "b", GuardKind.OUTPUT, "done"),)),
        ),
    )
    set2 = InputSetBinding(
        "inputSet2",
        (InputObjectBinding("inputObject3", (Source("q", "c", GuardKind.OUTPUT, "done"),)),),
    )
    events = [event("q", "done", c=3), event("p", "done", a=1, b=2)]

    def select():
        tracker = TaskInputTracker([set1, set2])
        for e in events:
            tracker.offer(e)
        return tracker.ready()

    chosen = benchmark(select)
    assert chosen[0] == "inputSet1"  # declared first, wins despite arriving last
    report(
        "F2: deterministic input-set choice",
        ["satisfied sets", "chosen"],
        [("inputSet1 + inputSet2", chosen[0])],
    )


def test_fig2_alternative_source_scaling(benchmark):
    """First-available-alternative matching cost vs. alternative-list length."""
    rows = []
    for alternatives in (1, 2, 4, 8, 16):
        sources = tuple(
            Source(f"p{i}", "x", GuardKind.OUTPUT, "done") for i in range(alternatives)
        )
        binding = InputSetBinding(
            "main", (InputObjectBinding("x", sources),)
        )
        # only the LAST listed alternative ever fires
        fired = event(f"p{alternatives - 1}", "done", x=1)

        tracker = TaskInputTracker([binding])
        tracker.offer(fired)
        ready = tracker.ready()
        assert ready is not None and ready[1]["x"].value == 1
        rows.append((alternatives, "last-listed", "satisfied"))

    def offer_sixteen():
        sources = tuple(
            Source(f"p{i}", "x", GuardKind.OUTPUT, "done") for i in range(16)
        )
        tracker = TaskInputTracker(
            [InputSetBinding("main", (InputObjectBinding("x", sources),))]
        )
        tracker.offer(event("p15", "done", x=1))
        return tracker.ready()

    benchmark(offer_sixteen)
    report("F2: alternative sources", ["alternatives", "fired", "result"], rows)
