"""Sanitizer overhead: the dynamic race/lockset observer must stay cheap.

Two claims backing ``docs/ANALYSIS.md``:

* **disabled = free**: an unsanitized engine carries no hooks at all — the
  instance tree's ``_publish``/``_start_node`` are the pristine class
  methods, so the default path pays zero branches for the feature;
* **enabled <= 2.5x**: with vector clocks and the access history threaded
  through every publish/start, the fan-heavy hotpath workload slows down by
  at most 2.5x (the budget was 2x before the I/O core landed — the
  zero-copy marshal and compiled-script cache sped the *plain* baseline
  up, so the same absolute sanitizer cost is a larger ratio).

Writes the measured ratio to ``BENCH_sanitizer.json`` (override with the
``BENCH_SANITIZER`` environment variable).
"""

import json
import os
import time

from repro.analysis import Sanitizer
from repro.engine import LocalEngine, LocalWorkflow
from repro.engine.instance import InstanceTree
from repro.workloads import fan

from .conftest import report


def measure(sanitized, repeats=5):
    script, registry, root, inputs = fan(64)
    best = None
    for _ in range(repeats):
        engine = LocalEngine(
            registry, sanitizer=Sanitizer() if sanitized else None
        )
        begin = time.perf_counter()
        result = engine.run(script, root, inputs=inputs)
        elapsed = time.perf_counter() - begin
        assert result.completed, result.status
        best = elapsed if best is None else min(best, elapsed)
    return best


def test_disabled_sanitizer_installs_no_hooks():
    script, registry, root, inputs = fan(8)
    wf = LocalWorkflow(script, root, registry)
    assert wf.tree._publish.__func__ is InstanceTree._publish
    assert wf.tree._start_node.__func__ is InstanceTree._start_node


def test_sanitizer_overhead_within_budget():
    plain_s = measure(sanitized=False)
    sanitized_s = measure(sanitized=True)
    ratio = sanitized_s / plain_s
    report(
        "sanitizer overhead on fan(64)",
        ["mode", "best wall s", "ratio"],
        [
            ("plain", f"{plain_s:.4f}", "1.00"),
            ("sanitized", f"{sanitized_s:.4f}", f"{ratio:.2f}"),
        ],
    )
    out = os.environ.get("BENCH_SANITIZER", "BENCH_sanitizer.json")
    with open(out, "w") as fh:
        json.dump(
            {
                "workload": "fan64",
                "plain_wall_s": round(plain_s, 6),
                "sanitized_wall_s": round(sanitized_s, 6),
                "overhead_ratio": round(ratio, 3),
                "budget": 2.5,
            },
            fh,
            indent=2,
            sort_keys=True,
        )
    print(f"   wrote {out}")
    assert ratio <= 2.5, f"sanitizer overhead {ratio:.2f}x exceeds the 2.5x budget"
