"""Adaptive dispatch resilience vs the fixed-interval baseline.

A stream of order instances arrives while ``RandomCrasher`` repeatedly takes
worker nodes down.  The legacy dispatcher (``ResilienceConfig.disabled()``)
waits a fixed ``dispatch_timeout`` and rotates blindly, so every dispatch
that lands on a dead worker stalls its instance for a full timeout (or
several).  The adaptive layer routes around unhealthy workers, hedges
slow flights and backs off with deterministic jitter — same chaos, same
seeds, strictly better mean completion time.

Also asserts the safety side of hedging: duplicated dispatches must never
be *applied* twice (the journal dedupes by task path + execution index).
"""

import json
import os

from repro.core.selection import EventKind
from repro.net import RandomCrasher
from repro.resilience import ResilienceConfig
from repro.services import WorkflowSystem
from repro.workloads import paper_order

from .conftest import report

SCENARIO = dict(interval=40.0, downtime=20.0, chaos_seed=7, instances=10, gap=15.0)


def run_stream(resilience, interval, downtime, chaos_seed, instances, gap):
    """Run a staggered stream of order instances under worker chaos.

    Returns per-instance completion latencies (virtual time from arrival to
    the root outcome) plus the system for stats/journal inspection.
    """
    system = WorkflowSystem(
        workers=3,
        seed=42,
        dispatch_timeout=20.0,
        sweep_interval=5.0,
        resilience=resilience,
    )
    paper_order.default_registry(registry=system.registry)
    system.deploy("order", paper_order.SCRIPT_TEXT)
    crasher = RandomCrasher(
        system.clock,
        system.worker_nodes,  # workers only: the coordinator's journal stays put
        interval=interval,
        downtime=downtime,
        seed=chaos_seed,
    ).start()
    arrivals, iids = [], []
    for i in range(instances):
        arrivals.append(system.clock.now)
        iids.append(
            system.instantiate("order", paper_order.ROOT_TASK, {"order": f"o-{i}"})
        )
        system.clock.advance(gap)
    latencies = []
    for iid, arrived in zip(iids, arrivals):
        result = system.run_until_terminal(iid, max_time=100_000)
        assert result["status"] == "completed", (iid, result)
        assert result["outcome"] == "orderCompleted"
        log = system.execution.runtimes[iid].tree.log
        done = max(
            e.time
            for e in log.entries
            if e.event.kind is EventKind.OUTCOME and "/" not in e.producer_path
        )
        latencies.append(done - arrived)
    crasher.stop()
    assert len(crasher.injected) > 0  # chaos actually happened
    return latencies, system, iids


def assert_no_double_application(system, iids):
    """No reply — hedged duplicate or otherwise — was journaled twice."""
    for iid in iids:
        journal = system.execution.export_instance(iid)["journal"]
        seen = set()
        for entry in journal:
            if entry.get("type") != "result":
                continue
            key = (entry["path"], entry["exec"])
            assert key not in seen, (iid, key)
            seen.add(key)


def test_resilience_beats_fixed_interval_baseline(benchmark):
    base_lat, base_sys, base_iids = run_stream(
        ResilienceConfig.disabled(), **SCENARIO
    )
    res_lat, res_sys, res_iids = run_stream(None, **SCENARIO)  # adaptive default

    base_mean = sum(base_lat) / len(base_lat)
    res_mean = sum(res_lat) / len(res_lat)
    rows = []
    for label, lat, system in (
        ("fixed-interval", base_lat, base_sys),
        ("adaptive", res_lat, res_sys),
    ):
        stats = system.execution.stats
        rows.append(
            (
                label,
                f"{sum(lat) / len(lat):.2f}",
                f"{max(lat):.2f}",
                stats["redispatches"],
                stats["hedges"],
                stats["breaker_trips"],
                stats["abandoned"],
            )
        )
    report(
        "Resilience: order stream under worker chaos "
        "(interval=40, downtime=20, seed=7, 10 instances)",
        ["dispatcher", "mean latency", "max latency", "redispatches",
         "hedges", "breaker trips", "abandoned"],
        rows,
    )

    # the claim: same chaos, same seeds, strictly better mean completion time
    assert res_mean < base_mean
    # the adaptive mechanisms actually engaged and are visible in stats
    res_stats = res_sys.execution.stats
    for key in ("hedges", "breaker_trips", "abandoned", "failovers", "staggered"):
        assert key in res_stats
    assert res_stats["hedges"] >= 1
    # safety: at-least-once dispatch, exactly-once application — in both modes
    assert_no_double_application(base_sys, base_iids)
    assert_no_double_application(res_sys, res_iids)

    summary = {
        "scenario": SCENARIO,
        "baseline": {"mean_latency": base_mean, "max_latency": max(base_lat),
                     "stats": dict(base_sys.execution.stats)},
        "adaptive": {"mean_latency": res_mean, "max_latency": max(res_lat),
                     "stats": dict(res_sys.execution.stats)},
        "speedup": base_mean / res_mean,
    }
    out = os.environ.get(
        "RESILIENCE_SUMMARY",
        os.path.join(os.path.dirname(__file__), "resilience_summary.json"),
    )
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2)

    benchmark.pedantic(
        lambda: run_stream(None, **SCENARIO), rounds=2, iterations=1
    )


def test_resilience_severity_sweep(benchmark):
    """Harsher chaos engages more of the machinery (breakers trip, backoff
    caps kick in) while every instance still completes."""
    rows = []
    for label, interval, downtime, gap in (
        ("mild", 40.0, 20.0, 15.0),
        # harsh: burst arrival piles concurrent flights onto each crashed
        # worker, so its breaker sees enough consecutive timeouts to trip
        ("harsh", 15.0, 40.0, 0.0),
    ):
        scenario = dict(SCENARIO, interval=interval, downtime=downtime, gap=gap)
        latencies, system, iids = run_stream(None, **scenario)
        stats = system.execution.stats
        rows.append(
            (
                label,
                f"{sum(latencies) / len(latencies):.2f}",
                stats["redispatches"],
                stats["hedges"],
                stats["breaker_trips"],
            )
        )
        assert_no_double_application(system, iids)
    report(
        "Resilience: severity sweep (adaptive dispatcher)",
        ["chaos", "mean latency", "redispatches", "hedges", "breaker trips"],
        rows,
    )
    # the harsh row exercises the breakers
    assert rows[1][4] >= 1

    benchmark.pedantic(
        lambda: run_stream(
            None, **dict(SCENARIO, interval=15.0, downtime=40.0, gap=0.0)
        ),
        rounds=2,
        iterations=1,
    )
