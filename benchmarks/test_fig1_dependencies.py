"""F1 — Fig. 1: inter-task dependencies.

Regenerates the paper's first figure: the four-task workflow where t2 and t3
start once t1 finishes (t1->t2 a notification, t1->t3 dataflow) and t4 joins
both.  Asserts the drawn ordering constraints hold in execution on *both*
engines, then measures scheduling cost.
"""

from repro.core import dependency_graph
from repro.engine import LocalEngine
from repro.lang import format_script
from repro.services import WorkflowSystem
from repro.workloads import diamond

from .conftest import report


def test_fig1_structure_matches_figure(benchmark):
    script, registry, root, inputs = diamond()
    graph = dependency_graph(script.tasks[root])
    edges = {
        (u, v): d["flavour"]
        for u, v, d in graph.edges(data=True)
        if u != root and v != root
    }
    assert edges == {
        ("t1", "t2"): "notify",
        ("t1", "t3"): "data",
        ("t2", "t4"): "data",
        ("t3", "t4"): "data",
    }

    result = benchmark(
        lambda: LocalEngine(registry).run(script, root, inputs=inputs)
    )
    order = result.log.started_order()
    assert order.index("fig1/t1") < order.index("fig1/t2") < order.index("fig1/t4")
    assert order.index("fig1/t1") < order.index("fig1/t3") < order.index("fig1/t4")
    report(
        "F1: Fig. 1 diamond, local engine",
        ["task", "start rank"],
        [(p.split("/")[-1], i) for i, p in enumerate(order)],
    )


def test_fig1_ordering_holds_distributed(benchmark):
    script, registry, root, inputs = diamond()

    def run():
        system = WorkflowSystem(workers=2, registry=registry)
        system.deploy("fig1", format_script(script))
        iid = system.instantiate("fig1", root, inputs)
        result = system.run_until_terminal(iid, max_time=10_000)
        runtime = system.execution.runtimes[iid]
        return result, runtime.tree.log.started_order(), system.clock.now

    result, order, elapsed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result["status"] == "completed"
    assert order.index("fig1/t1") < order.index("fig1/t2") < order.index("fig1/t4")
    assert order.index("fig1/t1") < order.index("fig1/t3") < order.index("fig1/t4")
    report(
        "F1: Fig. 1 diamond, distributed engine",
        ["metric", "value"],
        [("virtual completion time", elapsed), ("status", result["status"])],
    )
