"""Hot-path benchmark: compiled execution plans vs the interpretive path.

Measures, per workload, steps/sec and *readiness re-evaluations per publish*
(``HOTPATH_STATS.source_evals / publishes``) for both engine paths, asserts
byte-identical event logs, and writes the table to ``BENCH_hotpath.json``
(override the path with the ``BENCH_HOTPATH`` environment variable).

The headline claim: on fan-heavy scripts the firing table touches only the
consumers of the published event, cutting per-publish readiness work by >= 5x
versus offering every event to every sibling tracker.
"""

import json
import os
import time

from repro.core.selection import HOTPATH_STATS
from repro.engine import LocalEngine
from repro.workloads import chain, fan, random_dag

from .conftest import report

WORKLOADS = [
    ("fan64", lambda: fan(64)),
    ("chain64", lambda: chain(64)),
    ("dag48", lambda: random_dag(48, seed=7)),
]


def canonical_log(log):
    return [
        (
            entry.seq,
            entry.time,
            entry.scope_path,
            entry.producer_path,
            entry.event.producer,
            entry.event.kind.value,
            entry.event.name,
            entry.event.seq,
            tuple(
                (name, ref.class_name, ref.value, ref.produced_by, ref.via)
                for name, ref in entry.event.objects.items()
            ),
        )
        for entry in log.entries
    ]


def measure(workload, use_plan, repeats=3):
    """Best-of-N run: (result, wall seconds, publishes, evals/publish)."""
    script, registry, root, inputs = workload()
    engine = LocalEngine(registry, use_plan=use_plan)
    best = None
    for _ in range(repeats):
        HOTPATH_STATS.reset()
        begin = time.perf_counter()
        result = engine.run(script, root, inputs=inputs)
        elapsed = time.perf_counter() - begin
        assert result.completed, f"{root}: {result.status}"
        sample = (result, elapsed, HOTPATH_STATS.publishes, HOTPATH_STATS.evals_per_publish())
        if best is None or elapsed < best[1]:
            best = sample
    return best


def test_plan_hotpath_reduction_and_report():
    rows = []
    payload = {"unit": "readiness source evaluations per published event", "workloads": {}}
    for name, workload in WORKLOADS:
        interp_result, interp_s, publishes, interp_ratio = measure(workload, use_plan=False)
        plan_result, plan_s, plan_publishes, plan_ratio = measure(workload, use_plan=True)

        # same semantics before any perf claim
        assert canonical_log(plan_result.log) == canonical_log(interp_result.log)
        assert publishes == plan_publishes

        steps = plan_result.stats["steps"]
        reduction = interp_ratio / plan_ratio if plan_ratio else float("inf")
        rows.append(
            (
                name,
                steps,
                f"{steps / plan_s:.0f}",
                f"{steps / interp_s:.0f}",
                f"{plan_ratio:.2f}",
                f"{interp_ratio:.2f}",
                f"{reduction:.1f}x",
            )
        )
        payload["workloads"][name] = {
            "steps": steps,
            "publishes": publishes,
            "plan_steps_per_sec": round(steps / plan_s, 1),
            "interpretive_steps_per_sec": round(steps / interp_s, 1),
            "plan_evals_per_publish": round(plan_ratio, 3),
            "interpretive_evals_per_publish": round(interp_ratio, 3),
            "eval_reduction": round(reduction, 2),
            "logs_byte_identical": True,
        }

    report(
        "hotpath: plan vs interpretive",
        ["workload", "steps", "plan st/s", "interp st/s", "plan ev/pub", "interp ev/pub", "reduction"],
        rows,
    )

    out = os.environ.get("BENCH_HOTPATH", "BENCH_hotpath.json")
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"   wrote {out}")

    # acceptance: >= 5x fewer per-publish readiness re-evaluations on the
    # fan-heavy workload, where incrementalization matters most
    assert payload["workloads"]["fan64"]["eval_reduction"] >= 5.0
