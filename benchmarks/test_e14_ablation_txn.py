"""E14 — ablation: transactional dependency propagation.

The paper's execution service records coordination state in persistent atomic
objects updated under transactions.  This experiment removes exactly that
piece (``durable=False``: the journal becomes volatile) and shows:

* without failures, both variants complete — durability costs only overhead
  (journal transactions, WAL forces);
* with an execution-node crash, the durable variant recovers and completes
  while the ablated one loses the instance — the design choice earns its
  cost.
"""

from repro.net import FaultPlan
from repro.services import WorkflowSystem
from repro.workloads import paper_order

from .conftest import report


def run_variant(durable: bool, crash: bool, seed: int = 0):
    system = WorkflowSystem(
        workers=2,
        durable=durable,
        seed=seed,
        dispatch_timeout=20.0,
        sweep_interval=5.0,
    )
    paper_order.default_registry(registry=system.registry)
    system.deploy("order", paper_order.SCRIPT_TEXT)
    iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o"})
    if crash:
        FaultPlan(system.clock).crash_at(
            system.execution_node, when=2.0, down_for=30.0
        ).arm()
    result = system.run_until_terminal(iid, max_time=20_000)
    journal_writes = system.execution.manager.stats["committed"]
    return result, journal_writes, system.clock.now


def test_e14_overhead_without_failures(benchmark):
    durable_result, durable_txns, durable_time = run_variant(True, crash=False)
    volatile_result, volatile_txns, volatile_time = run_variant(False, crash=False)
    assert durable_result["status"] == "completed"
    assert volatile_result["status"] == "completed"
    report(
        "E14: durability overhead (no failures)",
        ["variant", "status", "journal txns", "virtual time"],
        [
            ("durable (paper)", durable_result["status"], durable_txns, durable_time),
            ("volatile (ablation)", volatile_result["status"], volatile_txns, volatile_time),
        ],
    )
    # the ablation writes no durable journal transactions
    assert volatile_txns == 0 < durable_txns

    benchmark.pedantic(lambda: run_variant(True, crash=False), rounds=3, iterations=1)


def test_e14_crash_separates_the_variants(benchmark):
    durable_result, *_ = run_variant(True, crash=True)
    volatile_result, *_ = run_variant(False, crash=True)
    report(
        "E14: execution-node crash mid-run",
        ["variant", "status", "outcome"],
        [
            ("durable (paper)", durable_result["status"], durable_result["outcome"]),
            ("volatile (ablation)", volatile_result["status"], volatile_result["outcome"]),
        ],
    )
    assert durable_result["status"] == "completed"
    assert volatile_result["status"] == "lost"

    benchmark.pedantic(lambda: run_variant(True, crash=True), rounds=2, iterations=1)


def test_e14_store_level_wal_costs(benchmark):
    """Micro-view of the same trade-off at the substrate: committed updates
    survive ObjectStore.crash() exactly when the WAL forced them."""
    from repro.txn import ObjectStore, TransactionManager

    def committed_survives():
        store = ObjectStore("s")
        tm = TransactionManager("tm")
        for i in range(50):
            with tm.begin() as txn:
                txn.write(store, f"k{i}", i)
        store.crash()
        return sum(1 for i in range(50) if store.get_committed(f"k{i}") == i)

    survived = benchmark(committed_survives)
    assert survived == 50
