"""E12 — §6 related-work comparison.

The paper argues for structure-based scripts over ECA rules (METEOR) and
Petri nets.  We run the paper's applications on all three engines and
compare: correctness agreement, specification size, locality of change, and
execution cost — plus the expressiveness gap (neither baseline can encode
the trip application's repeat loops).
"""

import pytest

from repro.baselines import EcaWorkflow, PetriWorkflow
from repro.core.errors import ExecutionError
from repro.engine import LocalEngine
from repro.workloads import paper_order, paper_service_impact, paper_trip

from .conftest import report


def spec_metrics(script, root, registry_factory):
    compound = script.tasks[root]
    decls = 1 + len(compound.tasks)  # the compound + constituents
    eca = EcaWorkflow(script, root, registry_factory())
    net = PetriWorkflow(script, root, registry_factory())
    return decls, eca.rule_count, net.transition_count, net.place_count


def test_e12_agreement_and_size(benchmark):
    apps = [
        ("order", paper_order.build(), paper_order.ROOT_TASK,
         paper_order.default_registry, {"order": "o"}),
        ("service-impact", paper_service_impact.build(), paper_service_impact.ROOT_TASK,
         paper_service_impact.default_registry, {"alarmsSource": "a"}),
    ]
    rows = []
    for name, script, root, factory, inputs in apps:
        reference = LocalEngine(factory()).run(script, inputs=inputs)
        eca_result = EcaWorkflow(script, root, factory()).run(inputs)
        net_result = PetriWorkflow(script, root, factory()).run(inputs)
        assert eca_result["outcome"] == reference.outcome
        assert net_result["outcome"] == reference.outcome
        decls, rules, transitions, places = spec_metrics(script, root, factory)
        rows.append((name, decls, rules, f"{transitions}t/{places}p", reference.outcome))
    report(
        "E12: specification size (script decls vs ECA rules vs Petri net)",
        ["app", "script decls", "ECA rules", "net size", "agreed outcome"],
        rows,
    )

    script, root, factory = apps[0][1], apps[0][2], apps[0][3]
    benchmark(lambda: EcaWorkflow(script, root, factory()).run({"order": "o"}))


def test_e12_expressiveness_gap(benchmark):
    """Neither baseline expresses the trip app's repeat-outcome loops."""
    script = paper_trip.build()
    with pytest.raises(ExecutionError):
        EcaWorkflow(script, paper_trip.ROOT_TASK, paper_trip.default_registry())
    with pytest.raises(ExecutionError):
        PetriWorkflow(script, paper_trip.ROOT_TASK, paper_trip.default_registry())
    # ...while the reference engine runs it fine
    result = LocalEngine(paper_trip.default_registry()).run(
        script, inputs={"user": "u"}
    )
    assert result.outcome == "tripArranged"
    report(
        "E12: expressiveness (trip app with repeat loops)",
        ["engine", "supports trip app"],
        [("scripting language", True), ("ECA rules", False), ("Petri net", False)],
    )

    def trip_on_reference_engine():
        return LocalEngine(paper_trip.default_registry()).run(
            script, inputs={"user": "u"}
        )

    assert benchmark.pedantic(
        trip_on_reference_engine, rounds=3, iterations=1
    ).outcome == "tripArranged"


def test_e12_locality_of_change(benchmark):
    """Adding one dependency: our script touches 1 declaration; the ECA
    encoding regenerates every rule derived from the task's input sets."""
    from repro.core import AddDependency
    from repro.core.schema import GuardKind, Source

    script = paper_order.build()
    change = AddDependency(
        "processOrderApplication/paymentCapture",
        "main",
        None,
        (Source("checkStock", None, GuardKind.OUTPUT, "stockAvailable"),),
    )
    new_script = change.apply_checked(script)
    old = script.tasks["processOrderApplication"]
    new = new_script.tasks["processOrderApplication"]
    script_touched = sum(1 for t in new.tasks if t is not old.task(t.name))

    factory = paper_order.default_registry
    eca_before = EcaWorkflow(script, paper_order.ROOT_TASK, factory())
    eca_after = EcaWorkflow(new_script, paper_order.ROOT_TASK, factory())
    # every start rule closes over its full condition: the affected task's
    # rule is rebuilt, and rule identity is positional, so tools diffing the
    # rule base see the task's whole rule set change
    assert eca_before.rule_count == eca_after.rule_count
    report(
        "E12: locality of one dependency change",
        ["formalism", "declarations touched"],
        [("scripting language", script_touched), ("ECA rules", "1 rule rebuilt (whole condition)")],
    )
    assert script_touched == 1
    benchmark(lambda: change.apply_checked(script))


def test_e12_execution_cost_three_engines(benchmark):
    script = paper_order.build()
    root = paper_order.ROOT_TASK
    factory = paper_order.default_registry
    import time

    rows = []
    for label, runner in [
        ("script engine", lambda: LocalEngine(factory()).run(script, inputs={"order": "o"})),
        ("ECA rules", lambda: EcaWorkflow(script, root, factory()).run({"order": "o"})),
        ("Petri net", lambda: PetriWorkflow(script, root, factory()).run({"order": "o"})),
    ]:
        begin = time.perf_counter()
        for _ in range(20):
            runner()
        micros = (time.perf_counter() - begin) / 20 * 1e6
        rows.append((label, f"{micros:.0f}us"))
    report("E12: execution cost, order app", ["engine", "per run"], rows)

    benchmark(lambda: LocalEngine(factory()).run(script, inputs={"order": "o"}))
