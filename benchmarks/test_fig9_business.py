"""F9 — Fig. 9 / §5.3: the businessReservation compound.

Regenerates the inner structure: DA feeding CFR (itself a compound of three
parallel airline queries), FR with its costKnown mark, HR's repeat-based
retries, and the compensating FC.  Sweeps hotel-booking difficulty and checks
the compensation accounting.
"""

from repro.core import dependency_graph
from repro.core.selection import EventKind
from repro.engine import LocalEngine
from repro.workloads import paper_trip

from .conftest import report

BR = "tripReservation/businessReservation"


def test_fig9_structure(benchmark):
    script = paper_trip.build()
    benchmark(lambda: dependency_graph(script.tasks[paper_trip.ROOT_TASK].task("businessReservation")))
    br = script.tasks[paper_trip.ROOT_TASK].task("businessReservation")
    assert {t.name for t in br.tasks} == {
        "dataAcquisition",
        "checkFlightReservation",
        "flightReservation",
        "hotelReservation",
        "flightCancellation",
    }
    cfr = br.task("checkFlightReservation")
    assert cfr.is_compound and len(cfr.tasks) == 3
    graph = dependency_graph(br)
    assert graph.has_edge("dataAcquisition", "checkFlightReservation")
    assert graph.has_edge("checkFlightReservation", "flightReservation")
    assert graph.has_edge("flightReservation", "hotelReservation")
    assert graph.has_edge("hotelReservation", "flightCancellation")


def test_fig9_alternative_quote_selection(benchmark):
    """First-listed available airline wins (not the cheapest)."""
    script = paper_trip.build()

    def run(quotes):
        registry = paper_trip.default_registry(airline_quotes=quotes)
        return LocalEngine(registry).run(script, inputs={"user": "u"})

    rows = []
    for quotes, expected in [
        ((300.0, 420.0, 380.0), 300.0),
        ((None, 420.0, 380.0), 420.0),
        ((None, None, 380.0), 380.0),
    ]:
        result = run(quotes)
        cost = result.marks[0][1]["cost"].value
        assert cost == expected
        rows.append((quotes, cost))
    report("F9: first-available airline quote", ["quotes", "chosen cost"], rows)

    benchmark(lambda: run((None, 420.0, 380.0)))


def test_fig9_hotel_difficulty_sweep(benchmark):
    """Hotel retries rise with difficulty until the round fails, triggering
    FC compensation and a BR loop."""
    script = paper_trip.build()

    def run(attempts_needed, max_tries):
        registry = paper_trip.default_registry(
            hotel_attempts_needed=attempts_needed, hotel_max_tries=max_tries
        )
        return LocalEngine(registry).run(script, inputs={"user": "u"})

    rows = []
    for needed in (0, 1, 2):
        result = run(needed, 4)
        assert result.outcome == "tripArranged"
        hr_repeats = sum(
            1
            for e in result.log.for_task(f"{BR}/hotelReservation")
            if e.event.kind is EventKind.REPEAT
        )
        assert hr_repeats == needed
        rows.append((needed, 4, hr_repeats, result.outcome))
    report(
        "F9: hotel retries sweep",
        ["attempts needed", "max tries", "HR repeats", "outcome"],
        rows,
    )

    benchmark(lambda: run(1, 4))


def test_fig9_compensation_accounting(benchmark):
    """Every failed round reserves a flight and must cancel exactly it."""
    script = paper_trip.build()

    def run(failed_rounds):
        registry = paper_trip.default_registry(
            hotel_rounds_until_success=failed_rounds + 1,
            hotel_attempts_needed=0,
            hotel_max_tries=2,
        )
        return LocalEngine(registry).run(script, inputs={"user": "u"})

    rows = []
    for failed_rounds in (0, 1, 2):
        result = run(failed_rounds)
        assert result.outcome == "tripArranged"
        cancellations = sum(
            1
            for e in result.log.entries
            if e.producer_path == f"{BR}/flightCancellation"
            and e.event.kind is EventKind.OUTCOME
        )
        assert cancellations == failed_rounds
        rows.append((failed_rounds, cancellations))
    report(
        "F9: compensation accounting",
        ["failed rounds", "flight cancellations"],
        rows,
    )

    benchmark(lambda: run(1))
