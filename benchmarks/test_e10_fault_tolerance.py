"""E10 — §3 fault-tolerance claim.

"Notification and dataflow dependencies must be implemented such that tasks
eventually receive their inputs and notifications despite finite number of
intervening processor crashes and temporary network related failures."

We sweep crash aggressiveness and message-loss rate on the distributed
system: with the durable journal the workflow must *always* complete; the
cost is visible as extra virtual time and re-dispatches.
"""

from repro.net import FaultPlan, RandomCrasher
from repro.services import WorkflowSystem
from repro.workloads import paper_order

from .conftest import report


def run_under_faults(crash_interval=None, loss_rate=0.0, seed=0):
    system = WorkflowSystem(
        workers=2,
        loss_rate=loss_rate,
        seed=seed,
        dispatch_timeout=20.0,
        sweep_interval=5.0,
    )
    paper_order.default_registry(registry=system.registry)
    system.deploy("order", paper_order.SCRIPT_TEXT)
    iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o"})
    crasher = None
    if crash_interval is not None:
        crasher = RandomCrasher(
            system.clock,
            [system.execution_node] + system.worker_nodes,
            interval=crash_interval,
            downtime=25.0,
            seed=seed,
        ).start()
    result = system.run_until_terminal(iid, max_time=100_000)
    if crasher:
        crasher.stop()
    return result, system


def test_e10_baseline_no_faults(benchmark):
    result, system = benchmark.pedantic(
        lambda: run_under_faults(), rounds=3, iterations=1
    )
    assert result["status"] == "completed"


def test_e10_crash_rate_sweep(benchmark):
    rows = []
    for label, interval in [("none", None), ("mild", 40.0), ("harsh", 12.0)]:
        completed = 0
        total_time = 0.0
        redispatches = 0
        recoveries = 0
        for seed in range(5):
            result, system = run_under_faults(crash_interval=interval, seed=seed)
            if result["status"] == "completed":
                completed += 1
            total_time += system.clock.now
            redispatches += system.execution.stats["redispatches"]
            recoveries += system.execution.stats["recoveries"]
        rows.append(
            (label, f"{completed}/5", f"{total_time / 5:.0f}", redispatches, recoveries)
        )
    report(
        "E10: completion under random crashes (durable journal ON)",
        ["crash rate", "completed", "avg virtual time", "redispatches", "recoveries"],
        rows,
    )
    # the paper's guarantee: everything completes, at a latency cost
    assert all(row[1] == "5/5" for row in rows)
    assert float(rows[0][2]) <= float(rows[2][2])

    benchmark.pedantic(
        lambda: run_under_faults(crash_interval=60.0, seed=1), rounds=2, iterations=1
    )


def test_e10_loss_rate_sweep(benchmark):
    rows = []
    for loss in (0.0, 0.1, 0.3):
        result, system = run_under_faults(loss_rate=loss, seed=3)
        assert result["status"] == "completed"
        rows.append(
            (
                loss,
                result["status"],
                f"{system.clock.now:.0f}",
                system.network.stats.dropped_loss,
                system.execution.stats["redispatches"],
            )
        )
    report(
        "E10: completion under message loss",
        ["loss rate", "status", "virtual time", "dropped", "redispatches"],
        rows,
    )
    assert float(rows[0][2]) <= float(rows[2][2])

    benchmark.pedantic(
        lambda: run_under_faults(loss_rate=0.3, seed=3), rounds=2, iterations=1
    )


def test_e10_targeted_worst_case(benchmark):
    """Crash the coordinator AND a worker AND lose messages, all at once."""

    def run():
        system = WorkflowSystem(
            workers=2, loss_rate=0.2, seed=9, dispatch_timeout=15.0, sweep_interval=5.0
        )
        paper_order.default_registry(registry=system.registry)
        system.deploy("order", paper_order.SCRIPT_TEXT)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o"})
        plan = FaultPlan(system.clock)
        plan.crash_at(system.execution_node, when=2.0, down_for=30.0)
        plan.crash_at(system.worker_nodes[0], when=4.0, down_for=200.0)
        plan.crash_at(system.execution_node, when=80.0, down_for=30.0)
        plan.arm()
        return system.run_until_terminal(iid, max_time=100_000)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result["status"] == "completed"
    assert result["outcome"] == "orderCompleted"
