"""I/O-core benchmark: WAL group commit + batched journal appends + zero-copy
marshal vs the per-entry, per-force, always-copy path (docs/PROTOCOLS.md §11).

Drives the full distributed system on the fan(64) workload with a *real*
on-disk WAL mirror attached to the execution store, so every fsync the
durability discipline issues has physical cost.  Measures, for both modes:

* steps/sec — journal entries applied per wall-clock second,
* fsyncs/step — physical mirror syncs per journal entry,
* marshal ns/call — micro-benchmark of the ORB copy boundary.

Asserts the durable journals are byte-identical across modes before making
any perf claim, then writes the table to ``BENCH_iopath.json`` (override the
path with the ``BENCH_IOPATH`` environment variable).

Headline claims: >= 3x steps/sec and >= 4x fewer fsyncs/step on fan(64).
"""

import json
import os
import time

from repro.core.instrument import IOPATH_STATS
from repro.orb.marshal import marshal, set_fast_path
from repro.services import WorkflowSystem
from repro.workloads import fan, script_text

from .conftest import report

WIDTH = 64
REPEATS = 3


def run_fan(tmp_path, tag, *, fast):
    """One full fan(64) run; returns (wall seconds, io snapshot, journal)."""
    script, registry, root, inputs = fan(WIDTH)
    mirror = str(tmp_path / f"wal-{tag}.jsonl")
    set_fast_path(fast)
    try:
        system = WorkflowSystem(
            workers=3,
            seed=0,
            registry=registry,
            journal_batch=fast,
            group_commit=fast,
            mirror_path=mirror,
        )
        system.deploy("fan", script_text((script, registry, root, inputs)))
        IOPATH_STATS.reset()
        begin = time.perf_counter()
        iid = system.instantiate("fan", root, inputs)
        result = system.run_until_terminal(iid, max_time=50_000)
        elapsed = time.perf_counter() - begin
    finally:
        set_fast_path(True)
    assert result["status"] == "completed", result
    snapshot = IOPATH_STATS.snapshot()
    store = system.execution_store
    meta = store.get_committed(f"instance:{iid}:meta")
    journal = store.get_committed_many(
        f"instance:{iid}:journal:{n}" for n in range(meta["journal_len"])
    )
    store.wal.close()
    return elapsed, snapshot, json.dumps(journal, sort_keys=True)


def measure_mode(tmp_path, tag, *, fast):
    """Best-of-N wall clock; counters are identical across repeats."""
    best = None
    for attempt in range(REPEATS):
        sample = run_fan(tmp_path, f"{tag}-{attempt}", fast=fast)
        if best is None or sample[0] < best[0]:
            best = sample
    return best


def measure_marshal(rounds=2000):
    """ns/call for a representative immutable reply payload — the shape task
    results take on the wire — structural copy vs zero-copy by-reference."""
    payload = (
        "w17",
        ("done", ("out", "seed+"), None, 3),
        ("attempt", 1, "deadline", None),
    )
    timings = {}
    for label, fast in (("copy", False), ("zero_copy", True)):
        set_fast_path(fast)
        try:
            marshal(payload)  # prime the dispatch cache
            begin = time.perf_counter()
            for _ in range(rounds):
                marshal(payload)
            timings[label] = (time.perf_counter() - begin) / rounds * 1e9
        finally:
            set_fast_path(True)
    return timings


def test_iopath_speedup_and_report(tmp_path):
    before_s, before_io, before_journal = measure_mode(tmp_path, "before", fast=False)
    after_s, after_io, after_journal = measure_mode(tmp_path, "after", fast=True)

    # same durable history before any perf claim
    assert before_journal == after_journal
    steps = before_io["journal_entries"]
    assert steps == after_io["journal_entries"]

    before_fsyncs_per_step = before_io["wal_syncs"] / steps
    after_fsyncs_per_step = after_io["wal_syncs"] / steps
    fsync_reduction = before_fsyncs_per_step / after_fsyncs_per_step
    speedup = before_s / after_s
    marshal_ns = measure_marshal()

    rows = [
        (
            "per-entry+per-force",
            steps,
            f"{steps / before_s:.0f}",
            before_io["wal_syncs"],
            f"{before_fsyncs_per_step:.3f}",
            before_io["journal_batches"],
            f"{marshal_ns['copy']:.0f}",
        ),
        (
            "batched+group-commit",
            steps,
            f"{steps / after_s:.0f}",
            after_io["wal_syncs"],
            f"{after_fsyncs_per_step:.3f}",
            after_io["journal_batches"],
            f"{marshal_ns['zero_copy']:.0f}",
        ),
    ]
    report(
        f"iopath: fan({WIDTH}) with on-disk WAL mirror",
        ["mode", "steps", "steps/s", "fsyncs", "fsyncs/step", "txns", "marshal ns"],
        rows,
    )
    print(f"   speedup {speedup:.1f}x, fsync reduction {fsync_reduction:.1f}x")

    payload = {
        "workload": f"fan({WIDTH})",
        "steps": steps,
        "before": {
            "steps_per_sec": round(steps / before_s, 1),
            "fsyncs": before_io["wal_syncs"],
            "fsyncs_per_step": round(before_fsyncs_per_step, 4),
            "journal_txns": before_io["journal_batches"],
            "marshal_ns_per_call": round(marshal_ns["copy"], 1),
        },
        "after": {
            "steps_per_sec": round(steps / after_s, 1),
            "fsyncs": after_io["wal_syncs"],
            "fsyncs_per_step": round(after_fsyncs_per_step, 4),
            "journal_txns": after_io["journal_batches"],
            "marshal_ns_per_call": round(marshal_ns["zero_copy"], 1),
        },
        "speedup": round(speedup, 2),
        "fsync_reduction": round(fsync_reduction, 2),
        "journals_byte_identical": True,
    }
    out = os.environ.get("BENCH_IOPATH", "BENCH_iopath.json")
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"   wrote {out}")

    # acceptance: the raw-speed I/O core claims
    assert fsync_reduction >= 4.0
    assert speedup >= 3.0
