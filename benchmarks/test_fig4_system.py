"""F4 — Fig. 4: workflow management system structure.

Regenerates the system diagram as a live assembly — repository service,
execution service and workers on distinct simulated nodes behind the ORB —
and measures the client-visible cost of the full deploy -> instantiate ->
run round trip as a function of network latency.
"""

from repro.net import LatencyModel
from repro.services import WorkflowSystem
from repro.workloads import paper_order

from .conftest import report


def build_system(base_latency=1.0):
    system = WorkflowSystem(
        workers=2, latency=LatencyModel(base_latency, base_latency / 2)
    )
    paper_order.default_registry(registry=system.registry)
    return system


def test_fig4_components_are_distinct_nodes(benchmark):
    system = build_system()
    node_names = {system.repository_node.name, system.execution_node.name} | {
        n.name for n in system.worker_nodes
    }
    assert len(node_names) == 4  # repository + execution + 2 workers
    # every service is reachable through the ORB by name
    assert set(system.broker.names()) >= {
        "repository",
        "execution",
        "worker-1",
        "worker-2",
    }
    # cost of assembling the whole simulated world (Fig. 4)
    assert benchmark.pedantic(build_system, rounds=3, iterations=1) is not None


def test_fig4_client_roundtrip(benchmark):
    def roundtrip():
        system = build_system()
        system.deploy("order", paper_order.SCRIPT_TEXT)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o"})
        result = system.run_until_terminal(iid, max_time=10_000)
        return result, system.clock.now

    result, elapsed = benchmark.pedantic(roundtrip, rounds=3, iterations=1)
    assert result["status"] == "completed"
    report(
        "F4: deploy->instantiate->run round trip",
        ["metric", "value"],
        [("status", result["status"]), ("virtual time", elapsed)],
    )


def test_fig4_latency_sweep(benchmark):
    rows = []
    for base in (0.5, 2.0, 8.0):
        system = build_system(base)
        system.deploy("order", paper_order.SCRIPT_TEXT)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o"})
        # fine-grained polling so completion time resolves below the default
        # 25-unit monitoring quantum
        result = system.run_until_terminal(iid, max_time=50_000, check_every=0.5)
        assert result["status"] == "completed"
        rows.append((base, f"{system.clock.now:.1f}", system.network.stats.sent))
    report(
        "F4: completion time vs per-hop latency",
        ["latency", "virtual completion time", "messages"],
        rows,
    )
    # completion time grows with latency (the expected shape)
    times = [float(r[1]) for r in rows]
    assert times[0] < times[1] < times[2]

    def run_low_latency():
        system = build_system(0.5)
        system.deploy("order", paper_order.SCRIPT_TEXT)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o"})
        return system.run_until_terminal(iid, max_time=50_000, check_every=0.5)

    assert benchmark.pedantic(run_low_latency, rounds=2, iterations=1)["status"] == "completed" 


def test_fig4_repository_operations(benchmark):
    system = build_system()
    repo = system.repository_proxy()
    repo.store_script("order", paper_order.SCRIPT_TEXT)

    info = benchmark(lambda: repo.inspect("order"))
    assert info["tasks"]["processOrderApplication"]["tasks"] == 4
