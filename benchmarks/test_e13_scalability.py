"""E13 — scalability (the paper targets "arbitrarily large" compositions).

Measures, against workflow size: script text size, parse+validate cost,
instance construction cost, and execution cost — for chains, fans and random
DAGs.  The expected shape: near-linear growth in tasks.
"""

from repro.engine import LocalEngine
from repro.engine.instance import InstanceTree
from repro.lang import compile_script
from repro.workloads import chain, fan, random_dag, script_text

from .conftest import report


def test_e13_parse_cost_vs_size(benchmark):
    rows = []
    texts = {}
    for n in (10, 50, 200):
        workload = chain(n)
        texts[n] = script_text(workload)
        rows.append((n, len(texts[n])))
    report("E13: generated script size", ["tasks", "characters"], rows)

    script = benchmark(lambda: compile_script(texts[200]))
    assert len(script.tasks["pipeline"].tasks) == 200


def test_e13_instance_construction(benchmark):
    script, registry, root, inputs = chain(200)
    tree = benchmark(lambda: InstanceTree(script, root))
    assert tree.nodes_created == 201


def test_e13_chain_execution_scaling(benchmark):
    import time

    rows = []
    for n in (10, 50, 200, 500):
        script, registry, root, inputs = chain(n)
        begin = time.perf_counter()
        result = LocalEngine(registry).run(script, root, inputs=inputs)
        millis = (time.perf_counter() - begin) * 1e3
        assert result.completed and result.stats["steps"] == n
        rows.append((n, f"{millis:.1f}ms", result.stats["events"]))
    report("E13: chain execution scaling", ["tasks", "wall time", "events"], rows)

    script, registry, root, inputs = chain(100)
    result = benchmark(lambda: LocalEngine(registry).run(script, root, inputs=inputs))
    assert result.completed


def test_e13_fan_execution_scaling(benchmark):
    rows = []
    for width in (5, 25, 100):
        script, registry, root, inputs = fan(width)
        result = LocalEngine(registry).run(script, root, inputs=inputs)
        assert result.completed
        rows.append((width, result.stats["steps"], result.stats["events"]))
    report("E13: fan-out scaling", ["width", "tasks run", "events"], rows)

    script, registry, root, inputs = fan(50)
    result = benchmark(lambda: LocalEngine(registry).run(script, root, inputs=inputs))
    assert result.completed


def test_e13_random_dag_execution(benchmark):
    rows = []
    for n in (20, 100, 300):
        script, registry, root, inputs = random_dag(n, seed=7)
        result = LocalEngine(registry).run(script, root, inputs=inputs)
        assert result.completed
        rows.append((n, result.stats["steps"], result.stats["events"]))
    report("E13: random DAG scaling", ["tasks", "tasks run", "events"], rows)

    script, registry, root, inputs = random_dag(100, seed=7)
    result = benchmark(lambda: LocalEngine(registry).run(script, root, inputs=inputs))
    assert result.completed
