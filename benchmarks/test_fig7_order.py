"""F7 — Fig. 7 / §5.2: the order processing application.

Regenerates the figure: paymentAuthorisation and checkStock concurrent,
dispatch gated on both, paymentCapture gated on dispatch; the full
success/failure outcome matrix; and execution cost on both engines.
"""

from repro.core import structure_summary
from repro.core.selection import EventKind
from repro.engine import LocalEngine
from repro.services import WorkflowSystem
from repro.workloads import paper_order

from .conftest import report


def test_fig7_structure(benchmark):
    script = paper_order.build()
    summary = benchmark(
        lambda: structure_summary(script.tasks[paper_order.ROOT_TASK])
    )
    assert summary["tasks"] == 4
    assert summary["outputs"] == 2


def test_fig7_outcome_matrix(benchmark):
    script = paper_order.build()
    cases = [
        ("nominal", dict(), "orderCompleted"),
        ("not authorised", dict(authorise=False), "orderCancelled"),
        ("out of stock", dict(in_stock=False), "orderCancelled"),
        ("dispatch aborts", dict(dispatch_ok=False), "orderCancelled"),
    ]

    def run_all():
        rows = []
        for label, behaviour, expected in cases:
            registry = paper_order.default_registry(**behaviour)
            result = LocalEngine(registry).run(script, inputs={"order": "o"})
            rows.append((label, result.outcome, expected))
        return rows

    rows = benchmark(run_all)
    for _label, got, expected in rows:
        assert got == expected
    report("F7: Fig. 7 outcome matrix", ["case", "outcome", "expected"], rows)


def test_fig7_gating_constraints(benchmark):
    script = paper_order.build()
    registry = paper_order.default_registry()

    result = benchmark(lambda: LocalEngine(registry).run(script, inputs={"order": "o"}))
    root = paper_order.ROOT_TASK
    log = result.log
    assert log.happened_before(
        (f"{root}/paymentAuthorisation", EventKind.OUTCOME),
        (f"{root}/dispatch", EventKind.INPUT),
    )
    assert log.happened_before(
        (f"{root}/checkStock", EventKind.OUTCOME),
        (f"{root}/dispatch", EventKind.INPUT),
    )
    assert log.happened_before(
        (f"{root}/dispatch", EventKind.OUTCOME),
        (f"{root}/paymentCapture", EventKind.INPUT),
    )


def test_fig7_distributed_execution(benchmark):
    def run():
        system = WorkflowSystem(workers=2)
        paper_order.default_registry(registry=system.registry)
        system.deploy("order", paper_order.SCRIPT_TEXT)
        iid = system.instantiate("order", paper_order.ROOT_TASK, {"order": "o"})
        return system.run_until_terminal(iid, max_time=10_000)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result["outcome"] == "orderCompleted"


def test_fig7_abort_outcome_is_atomic_dispatch(benchmark):
    """The dispatchFailed box is drawn with a double border: an abort outcome
    of an atomic task, meaning no effects happened."""
    script = paper_order.build()
    registry = paper_order.default_registry(dispatch_ok=False)

    result = benchmark(lambda: LocalEngine(registry).run(script, inputs={"order": "o"}))
    aborts = result.log.of_kind(EventKind.ABORT)
    assert [e.event.name for e in aborts] == ["dispatchFailed"]
    # and the capture task never started (no money moved for a failed dispatch)
    capture_inputs = [
        e
        for e in result.log.for_task(f"{paper_order.ROOT_TASK}/paymentCapture")
        if e.event.kind is EventKind.INPUT
    ]
    assert capture_inputs == []
