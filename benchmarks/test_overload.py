"""Overload benchmark: goodput under sustained overload with and without
the admission/shedding layer (docs/PROTOCOLS.md §13).

Three runs of the same Poisson traffic shape against a 2-worker system with
finite service capacity (1 virtual second per stage, one lane per worker):

* **1x baseline** — offered load ~40% of capacity, overload layer on: the
  system is uncongested; admission is invisible.
* **10x shedding** — offered load ~10x the baseline with the overload layer
  on: the bounded queue refuses the excess with retry-after hints, the
  delay-gradient controller shrinks the admitted window, low-criticality
  arrivals are shed as journaled decisive outcomes — and the work that *is*
  admitted still completes within the SLO.
* **10x disabled** — same storm, layer off: every arrival is admitted, the
  dispatch layer's own retries and hedges pile onto the saturated workers,
  sojourn diverges, and goodput-within-SLO collapses (the metastable
  failure mode the layer exists to prevent).

The headline metric is **SLO goodput**: completions whose end-to-end
sojourn stayed within ``SLO_S``, per virtual second.  Raw completions would
flatter the disabled run — a backlog that drains hours late still
"completes".  Asserts the shedding run holds ≥70% of the uncongested
baseline while the disabled run drops below 30%, that shed-mode p99
sojourn stays bounded while the disabled run diverges, and writes the
table to ``BENCH_overload.json`` (override with ``BENCH_OVERLOAD``).
"""

import json
import os
import time

from repro.overload import OverloadConfig
from repro.services import WorkflowSystem
from repro.workloads import TrafficSpec, run_traffic, traffic_registry

from .conftest import report

BASE_RATE = 0.2          # ~40% of the 2-worker, 1s/stage capacity
OVERLOAD_FACTOR = 10.0
DURATION_S = 600.0
DRAIN_S = 600.0
SLO_S = 120.0
SEED = 7

TIGHT = dict(
    queue_capacity=16, initial_window=16, min_window=4,
    sojourn_target=30.0, control_interval=10.0,
)


def run_scenario(rate: float, *, shedding: bool):
    overload = OverloadConfig(**TIGHT) if shedding else OverloadConfig.disabled()
    system = WorkflowSystem(
        workers=2, registry=traffic_registry(), seed=SEED,
        worker_service_time=1.0, worker_lanes=1, overload=overload,
    )
    spec = TrafficSpec(
        rate=rate, duration=DURATION_S, drain=DRAIN_S, seed=SEED, slo=SLO_S
    )
    begin = time.perf_counter()
    slo_report = run_traffic(system, spec)
    wall = time.perf_counter() - begin
    return slo_report, wall


def row_of(label, r, wall):
    return (
        label, r.offered, r.completed, r.shed, r.refused, r.unfinished,
        f"{r.slo_goodput:.3f}", f"{r.p99_sojourn:.0f}", f"{wall:.1f}",
    )


def test_overload_goodput_and_report():
    base, base_wall = run_scenario(BASE_RATE, shedding=True)
    shed, shed_wall = run_scenario(BASE_RATE * OVERLOAD_FACTOR, shedding=True)
    off, off_wall = run_scenario(BASE_RATE * OVERLOAD_FACTOR, shedding=False)

    # the uncongested baseline is the yardstick; it must itself be healthy
    assert base.unfinished == 0
    assert base.slo_goodput > 0

    shed_ratio = shed.slo_goodput / base.slo_goodput
    off_ratio = off.slo_goodput / base.slo_goodput

    # headline: under 10x overload the shedding system keeps ≥70% of the
    # uncongested SLO goodput; with the layer disabled it collapses <30%
    assert shed_ratio >= 0.70, (shed_ratio, shed.slo_goodput, base.slo_goodput)
    assert off_ratio < 0.30, (off_ratio, off.slo_goodput, base.slo_goodput)

    # latency honesty: admitted work stays bounded under shedding (within a
    # small multiple of the controller's target) while the unprotected run
    # diverges past it
    assert shed.p99_sojourn <= 12 * TIGHT["sojourn_target"], shed.p99_sojourn
    assert off.p99_sojourn > shed.p99_sojourn

    # backpressure engaged: refusals carried retry-after, sheds journaled,
    # and the controller actually moved the window
    assert shed.refused > 0
    assert shed.overload["rejected"] > 0
    assert shed.overload["window"] < TIGHT["initial_window"]
    assert shed.shed + shed.overload["shed_low"] >= 0  # by-class counters live
    assert off.unfinished > 0  # the disabled run never drains its backlog

    report(
        f"overload: Poisson traffic, SLO {SLO_S:.0f}s, "
        f"{OVERLOAD_FACTOR:.0f}x storm for {DURATION_S:.0f}s",
        ["mode", "offered", "done", "shed", "refused", "unfin",
         "slo goodput/s", "p99 s", "wall s"],
        [
            row_of("1x baseline (shedding on)", base, base_wall),
            row_of("10x overload (shedding on)", shed, shed_wall),
            row_of("10x overload (disabled)", off, off_wall),
        ],
    )

    payload = {
        "base_rate_per_s": BASE_RATE,
        "overload_factor": OVERLOAD_FACTOR,
        "duration_s": DURATION_S,
        "slo_s": SLO_S,
        "seed": SEED,
        "config": TIGHT,
        "baseline_1x": base.to_plain(),
        "shedding_10x": shed.to_plain(),
        "disabled_10x": off.to_plain(),
        "fingerprints": {
            "baseline_1x": base.fingerprint(),
            "shedding_10x": shed.fingerprint(),
            "disabled_10x": off.fingerprint(),
        },
        "slo_goodput_retention": {
            "shedding_10x": round(shed_ratio, 4),
            "disabled_10x": round(off_ratio, 4),
        },
    }
    out = os.environ.get("BENCH_OVERLOAD", "BENCH_overload.json")
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(
        f"   wrote {out}: shedding retains {shed_ratio:.0%} of baseline SLO "
        f"goodput under {OVERLOAD_FACTOR:.0f}x load; disabled collapses to "
        f"{off_ratio:.0%}"
    )
