"""Shared helpers for the benchmark harness.

Every ``benchmarks/test_*.py`` regenerates one figure or experiment from
DESIGN.md's experiment index: it *asserts* the structural/behavioural claims
of the paper artefact and *measures* the relevant operation with
pytest-benchmark.  ``report()`` prints the rows each experiment produces, so
``pytest benchmarks/ --benchmark-only -s`` reads like the paper's evaluation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import pytest

from repro.core.instrument import IOPATH_STATS
from repro.core.selection import HOTPATH_STATS


@pytest.fixture(autouse=True)
def _reset_hotpath_stats():
    """Isolate the process-global hot-path and I/O counters per benchmark: a
    prior test's publishes/forces/marshal counts must not skew ratios."""
    HOTPATH_STATS.reset()
    IOPATH_STATS.reset()
    yield
    HOTPATH_STATS.reset()
    IOPATH_STATS.reset()


def report(title: str, header: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Print one experiment's result table."""
    rows = list(rows)
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title}")
    print(f"   {line}")
    print(f"   {'-' * len(line)}")
    for row in rows:
        print("   " + "  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
