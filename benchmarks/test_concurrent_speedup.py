"""Concurrent engine — wall-clock speedup over the sequential reference.

The paper's execution environment dispatches every task whose dependencies
are satisfied; tasks with no mutual dependency run concurrently (§3,
Fig. 1).  This experiment runs a wide fan-out workload (one source, W
sleeping workers, one joining sink) on the sequential ``LocalEngine`` and
on ``ConcurrentEngine(parallelism=4)`` and asserts

* a ≥2x wall-clock speedup at parallelism=4, and
* identical outcome / output objects / marks — the scheduler changed, the
  language semantics did not.
"""

from __future__ import annotations

import time

from repro.engine import ConcurrentEngine, ImplementationRegistry, LocalEngine, outcome
from repro.workloads import fan

from .conftest import report

SLEEP = 0.05
WIDTH = 8


def sleeping_registry(delay: float = SLEEP) -> ImplementationRegistry:
    registry = ImplementationRegistry()

    def stage(ctx):
        time.sleep(delay)
        first = next(iter(ctx.inputs.values()), None)
        return outcome("done", out=first.value if first is not None else "x")

    registry.register("stage", stage)
    return registry


def fingerprint(result):
    return (
        result.outcome,
        {name: ref.value for name, ref in result.objects.items()},
        [
            (name, {k: v.value for k, v in objects.items()})
            for name, objects in result.marks
        ],
    )


def run_once(parallelism: int):
    script, _, root, inputs = fan(WIDTH)
    registry = sleeping_registry()
    if parallelism <= 1:
        engine = LocalEngine(registry)
    else:
        engine = ConcurrentEngine(registry, parallelism=parallelism)
    started = time.perf_counter()
    result = engine.run(script, root, inputs=inputs)
    return result, time.perf_counter() - started


def test_concurrent_speedup_on_fanout():
    sequential, t_seq = run_once(1)
    rows = [("sequential", 1, f"{t_seq:.3f}", "1.00x")]
    assert sequential.completed

    best = 0.0
    for parallelism in (2, 4, 8):
        concurrent, t_con = run_once(parallelism)
        assert fingerprint(concurrent) == fingerprint(sequential)
        speedup = t_seq / t_con
        best = max(best, speedup)
        rows.append((f"concurrent", parallelism, f"{t_con:.3f}", f"{speedup:.2f}x"))
        if parallelism == 4:
            speedup_at_4 = speedup
    report(
        f"Concurrent speedup: fan({WIDTH}), {SLEEP * 1000:.0f}ms tasks",
        ["engine", "parallelism", "wall s", "speedup"],
        rows,
    )
    # acceptance: >=2x at parallelism=4 on a width-8 fan
    assert speedup_at_4 >= 2.0, f"expected >=2x speedup at parallelism=4, got {speedup_at_4:.2f}x"


def test_concurrent_overhead_on_serial_chain_is_bounded():
    """A pure chain has no parallelism to mine; the thread pool must not
    slow it down catastrophically (lock + hop overhead only)."""
    from repro.workloads import chain

    script, registry, root, inputs = chain(200)
    t0 = time.perf_counter()
    sequential = LocalEngine(registry).run(script, root, inputs=inputs)
    t_seq = time.perf_counter() - t0
    t0 = time.perf_counter()
    concurrent = ConcurrentEngine(registry, parallelism=4).run(script, root, inputs=inputs)
    t_con = time.perf_counter() - t0
    assert sequential.completed and concurrent.completed
    assert fingerprint(concurrent) == fingerprint(sequential)
    report(
        "Concurrent overhead: chain(200), no-op tasks",
        ["engine", "wall s"],
        [("sequential", f"{t_seq:.3f}"), ("concurrent(4)", f"{t_con:.3f}")],
    )
    # generous bound: scheduling hops cost microseconds per task
    assert t_con < max(1.0, 50 * t_seq)
