"""F5 — Fig. 5: compound tasks.

Regenerates the figure (a compound with constituents wired to its ports),
verifies the §2 modularity claims — locality of modification and structural
sharing — and measures instantiation cost versus nesting depth.
"""

from repro.core import (
    AddDependency,
    ScriptBuilder,
    from_input,
    from_output,
)
from repro.core.schema import GuardKind, Source
from repro.engine import ImplementationRegistry, LocalEngine, outcome
from repro.engine.instance import InstanceTree

from .conftest import report


def nested_script(depth: int):
    """A compound nested ``depth`` levels, one passthrough task per level."""
    b = ScriptBuilder()
    b.object_class("Data")
    b.taskclass("Leaf").input_set("main", inp="Data").outcome("done", out="Data")
    b.taskclass("Level").input_set("main", inp="Data").outcome("done", out="Data")

    def nest(parent, level):
        if level == 0:
            parent.task("leaf", "Leaf").implementation(code="leaf").input(
                "main", "inp", from_input(parent.name, "main", "inp")
            ).up()
            parent.output("done").object(
                "out", from_output("leaf", "done", "out")
            ).up()
            return
        child = parent.compound(f"level{level}", "Level")
        child.input("main", "inp", from_input(parent.name, "main", "inp"))
        nest(child, level - 1)
        child.up()
        parent.output("done").object(
            "out", from_output(f"level{level}", "done", "out")
        ).up()

    root = b.compound("root", "Level")
    nest(root, depth)
    root.up()
    return b.build()


def test_fig5_compound_runs_at_every_depth(benchmark):
    registry = ImplementationRegistry().register(
        "leaf", lambda ctx: outcome("done", out=f"<{ctx.value('inp')}>")
    )
    rows = []
    for depth in (0, 1, 4, 8):
        script = nested_script(depth)
        result = LocalEngine(registry).run(script, "root", inputs={"inp": "x"})
        assert result.completed
        assert result.value("out") == "<x>"
        rows.append((depth, result.stats["nodes"], result.stats["events"]))
    report("F5: nesting depth sweep", ["depth", "instances", "events"], rows)
    deep = nested_script(8)
    result = benchmark(lambda: LocalEngine(registry).run(deep, "root", inputs={"inp": "x"}))
    assert result.completed


def test_fig5_instantiation_cost(benchmark):
    script = nested_script(8)
    tree = benchmark(lambda: InstanceTree(script, "root"))
    assert tree.nodes_created == 10  # root + 8 levels + leaf


def test_fig5_locality_of_modification(benchmark):
    """§2: adding a dependency to one task changes only that declaration.

    Schemas are immutable trees, so unchanged declarations are *the same
    objects* after a change — structural sharing makes locality observable.
    """
    from repro.workloads import paper_order

    script = paper_order.build()
    change = AddDependency(
        "processOrderApplication/paymentCapture",
        "main",
        None,
        (Source("checkStock", None, GuardKind.OUTPUT, "stockAvailable"),),
    )
    new_script = benchmark(lambda: change.apply_checked(script))
    old = script.tasks["processOrderApplication"]
    new = new_script.tasks["processOrderApplication"]
    untouched = [
        t.name
        for t in new.tasks
        if t is old.task(t.name)  # identical object: not rebuilt
    ]
    changed = [t.name for t in new.tasks if t is not old.task(t.name)]
    assert changed == ["paymentCapture"]
    assert set(untouched) == {"paymentAuthorisation", "checkStock", "dispatch"}
    report(
        "F5: locality of modification (add dependency to paymentCapture)",
        ["declaration", "rebuilt?"],
        [(name, name in changed) for name in [t.name for t in new.tasks]],
    )


def test_fig5_upstream_ignorant_of_downstream(benchmark):
    """§3: dependencies are unidirectional — producers never name consumers."""
    from repro.workloads import paper_order

    script = paper_order.build()
    compound = script.tasks["processOrderApplication"]
    producer = compound.task("paymentAuthorisation")
    referenced = {
        source.task_name
        for binding in producer.input_sets
        for obj in binding.objects
        for source in obj.sources
    }
    # the producer references only its own inputs' sources, never dispatch
    # or paymentCapture (its consumers)
    assert "dispatch" not in referenced
    assert "paymentCapture" not in referenced

    def collect_references():
        return {
            source.task_name
            for binding in producer.input_sets
            for obj in binding.objects
            for source in obj.sources
        }

    assert benchmark(collect_references) == referenced
