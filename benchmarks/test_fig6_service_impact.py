"""F6 — Fig. 6 / §5.1: the service impact application.

Regenerates the paper's network-management example from its own script text:
asserts the drawn structure (three chained constituents inside the compound)
and that every declared outcome is reachable, then measures parse+validate
and end-to-end execution cost.
"""

from repro.core import structure_summary
from repro.engine import LocalEngine
from repro.lang import compile_script
from repro.workloads import paper_service_impact as si

from .conftest import report


def test_fig6_compile_cost(benchmark):
    script = benchmark(lambda: compile_script(si.SCRIPT_TEXT))
    summary = structure_summary(script.tasks[si.ROOT_TASK])
    assert summary["tasks"] == 3       # correlator, analysis, resolution
    assert summary["outputs"] == 3     # resolved / notResolved / failure


def test_fig6_execution_cost(benchmark):
    script = si.build()
    registry = si.default_registry()

    result = benchmark(
        lambda: LocalEngine(registry).run(script, inputs={"alarmsSource": "feed"})
    )
    assert result.outcome == "resolved"


def test_fig6_every_outcome_reachable(benchmark):
    script = si.build()
    cases = [
        ("resolved", dict()),
        ("notResolved", dict(resolvable=False)),
        ("serviceImpactApplicationFailure", dict(fail_stage="correlate")),
        ("serviceImpactApplicationFailure", dict(fail_stage="analyse")),
        ("serviceImpactApplicationFailure", dict(fail_stage="resolve")),
    ]

    def run_all():
        rows = []
        for expected, behaviour in cases:
            registry = si.default_registry(**behaviour)
            result = LocalEngine(registry).run(
                script, inputs={"alarmsSource": "feed"}
            )
            rows.append((behaviour or "nominal", result.outcome, expected))
        return rows

    rows = benchmark(run_all)
    for _, got, expected in rows:
        assert got == expected
    report("F6: Fig. 6 outcome matrix", ["behaviour", "outcome", "expected"], rows)


def test_fig6_template_reuse_with_alternate_bindings(benchmark):
    """§5.1's point: the same compound is a template application, re-targeted
    by binding different implementations at instantiation time."""
    script = si.build()

    def scenario(fault: str):
        registry = si.default_registry(fault=fault)
        return LocalEngine(registry).run(script, inputs={"alarmsSource": "feed"})

    results = benchmark(lambda: [scenario("link-loss"), scenario("fiber-cut")])
    reports = [r.value("resolutionReport") for r in results]
    assert "link-loss" in reports[0] and "fiber-cut" in reports[1]
